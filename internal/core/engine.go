package core

import (
	"fmt"

	"oasis/internal/host"
	"oasis/internal/sim"
)

// EngineLoop is one device engine's poll body: the work a driver core does
// per iteration, with the iteration pacing (loop cost, idle backoff) owned
// by the Driver that runs it. PollOnce drains whatever is ready — bounded by
// the engine's own burst limits — and returns how many items it processed.
//
// An engine must do all of its work inside PollOnce: queue draining, channel
// polling, timed duties (telemetry windows, link checks), and flushing of
// partially-filled message lines. It must never sleep for pacing — the
// Driver charges the per-iteration cost — though it may sleep to model the
// cost of the work itself (message handling, cache operations).
type EngineLoop interface {
	// LoopName labels the loop in the driver's process name and stats.
	LoopName() string
	// PollOnce performs one poll iteration and reports items processed.
	PollOnce(p *sim.Proc) int
}

// DriverConfig paces a driver core.
type DriverConfig struct {
	// LoopCost is the per-iteration CPU cost charged after every pass over
	// the attached loops (§5.1's driver-core overhead model).
	LoopCost sim.Duration
	// IdleBackoff caps the exponential sleep applied after consecutive
	// empty iterations. Real driver cores busy-poll; the backoff is a
	// simulation-speed device bounding added latency to one backoff period.
	// 0 busy-polls faithfully.
	IdleBackoff sim.Duration
}

// Driver is one driver core: a dedicated polling process that multiplexes
// one or more engine loops (§3.2). The paper dedicates a core per frontend
// and per backend; attaching several loops to one Driver reproduces §5.1's
// observation that driver cores "handle other tasks, which delays message
// passing" — every attached loop shares the core's iterations.
type Driver struct {
	h       *host.Host
	name    string
	cfg     DriverConfig
	loops   []EngineLoop
	started bool

	stalled  bool
	stallSig *sim.Signal

	// Stats.
	Iterations     int64 // total poll iterations
	IdleIterations int64 // iterations that processed nothing
	Processed      int64 // total items processed across all loops
	Stalls         int64 // times the core was stalled (fault injection)
}

// NewDriver creates a driver core on h. The name labels the core's process.
func NewDriver(h *host.Host, name string, cfg DriverConfig) *Driver {
	return &Driver{h: h, name: name, cfg: cfg, stallSig: sim.NewSignal(h.Eng)}
}

// Host returns the host whose core this driver occupies.
func (d *Driver) Host() *host.Host { return d.h }

// Name returns the driver core's label.
func (d *Driver) Name() string { return d.name }

// Attach adds an engine loop to this core. Panics after Start: the paper's
// drivers fix their duties before polling begins.
func (d *Driver) Attach(l EngineLoop) {
	if d.started {
		panic(fmt.Sprintf("core: attach %q to running driver %q", l.LoopName(), d.name))
	}
	d.loops = append(d.loops, l)
}

// Loops returns the attached engine loops in attach order.
func (d *Driver) Loops() []EngineLoop { return d.loops }

// Start launches the polling process. Idempotent.
func (d *Driver) Start() {
	if d.started {
		return
	}
	d.started = true
	d.h.Eng.Go(d.name, d.run)
}

// Started reports whether the core is polling.
func (d *Driver) Started() bool { return d.started }

// Stall freezes the polling process at its next iteration boundary: no loop
// body runs, no telemetry is emitted, inbound rings back up. This models a
// crashed or wedged driver core for fault injection. The process itself is
// kept (a crashed host's core comes back as the same core), so Resume
// continues exactly where polling stopped.
func (d *Driver) Stall() {
	if d.stalled {
		return
	}
	d.stalled = true
	d.Stalls++
}

// Resume releases a stalled core; the polling process continues on the
// current sim tick.
func (d *Driver) Resume() {
	if !d.stalled {
		return
	}
	d.stalled = false
	d.stallSig.Broadcast()
}

// Stalled reports whether the core is currently frozen.
func (d *Driver) Stalled() bool { return d.stalled }

func (d *Driver) run(p *sim.Proc) {
	idle := sim.Duration(0)
	for {
		for d.stalled {
			d.stallSig.Wait(p)
		}
		progress := 0
		for _, l := range d.loops {
			progress += l.PollOnce(p)
		}
		d.Iterations++
		d.Processed += int64(progress)
		if progress > 0 {
			idle = 0
			p.Sleep(d.cfg.LoopCost)
			continue
		}
		d.IdleIterations++
		idle = NextIdle(idle, d.cfg.LoopCost, d.cfg.IdleBackoff)
		p.Sleep(d.cfg.LoopCost + idle)
	}
}

// NextIdle doubles the idle backoff from start up to cap (0 cap disables).
func NextIdle(cur, start, cap sim.Duration) sim.Duration {
	if cap <= 0 {
		return 0
	}
	if cur == 0 {
		cur = start
	} else {
		cur *= 2
	}
	if cur > cap {
		cur = cap
	}
	return cur
}

// EngineStats is the uniform counter block every engine exposes: link-layer
// accounting from its LinkSet plus buffer-area pressure, so operators see
// backpressure (full rings, deferred sends) and exhaustion (alloc failures)
// the same way for every device engine.
type EngineStats struct {
	Name          string
	Links         LinkStats
	BufAllocs     int64
	BufFrees      int64
	BufAllocFails int64
}

// AccumulateArea folds a buffer area's counters into the stats block.
func (s *EngineStats) AccumulateArea(a *BufferArea) {
	if a == nil {
		return
	}
	s.BufAllocs += a.Allocs
	s.BufFrees += a.Frees
	s.BufAllocFails += a.AllocFails
}
