package core

import "oasis/internal/obs"

// RegisterObs registers the set's aggregate backpressure counters under
// prefix/links/*, and each link's per-channel counters and inbound delivery
// latency histogram under prefix/chan/<peer>/*. peerName renders a peer id
// ("nic1", "host0") so channel series carry stable topology names.
func (s *LinkSet) RegisterObs(r *obs.Registry, prefix string, peerName func(peer uint32) string) {
	r.Counter(prefix+"/links/sent", func() int64 { return s.Stats().Sent })
	r.Counter(prefix+"/links/received", func() int64 { return s.Stats().Received })
	r.Counter(prefix+"/links/send_full", func() int64 { return s.Stats().SendFull })
	r.Counter(prefix+"/links/deferred", func() int64 { return s.Stats().Deferred })
	r.Counter(prefix+"/links/redrives", func() int64 { return s.Stats().Redrives })
	r.Counter(prefix+"/links/overflow", func() int64 { return s.Stats().Overflow })
	r.Gauge(prefix+"/links/pending_peak", func() float64 { return float64(s.Stats().PendingPeak) })
	for _, l := range s.order {
		l := l
		ch := prefix + "/chan/" + peerName(l.Peer)
		r.Counter(ch+"/sent", func() int64 { return l.Stats.Sent })
		r.Counter(ch+"/received", func() int64 { return l.Stats.Received })
		r.Counter(ch+"/send_full", func() int64 { return l.Stats.SendFull })
		r.Counter(ch+"/deferred", func() int64 { return l.Stats.Deferred })
		r.Gauge(ch+"/pending", func() float64 { return float64(len(l.pending)) })
		if h := l.End.InLatency(); h != nil {
			r.Histogram(ch+"/rx_lat", h)
		}
	}
}

// RegisterObs registers a buffer area's pressure counters under prefix/*.
func (a *BufferArea) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/buf_allocs", func() int64 { return a.Allocs })
	r.Counter(prefix+"/buf_frees", func() int64 { return a.Frees })
	r.Counter(prefix+"/buf_alloc_fails", func() int64 { return a.AllocFails })
	r.Gauge(prefix+"/buf_free", func() float64 { return float64(len(a.free)) })
}

// RegisterObs registers the driver core's accounting under prefix/*
// (conventionally core/<host or loop name>).
func (d *Driver) RegisterObs(r *obs.Registry, prefix string) {
	r.Gauge(prefix+"/loops", func() float64 { return float64(len(d.loops)) })
	r.Counter(prefix+"/iters", func() int64 { return d.Iterations })
	r.Counter(prefix+"/idle_iters", func() int64 { return d.IdleIterations })
	r.Counter(prefix+"/processed", func() int64 { return d.Processed })
}
