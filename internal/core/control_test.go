package core

import (
	"testing"

	"oasis/internal/netstack"
)

func TestControlCodecRoundTrip(t *testing.T) {
	msgs := []ControlMsg{
		{Op: CtlLinkDown, Kind: DeviceNIC, Dev: 3},
		{Op: CtlLinkUp, Kind: DeviceNIC, Dev: 9},
		{Op: CtlTelemetry, Kind: DeviceNIC, Dev: 2, Load: 123456789012, LinkUp: true, AER: 17, Errs: 200, QueueDepth: 31},
		{Op: CtlTelemetry, Kind: DeviceSSD, Dev: 1, Load: 0, LinkUp: false, QueueDepth: 65535},
		{Op: CtlFailover, Kind: DeviceNIC, Dev: 1, Aux: 2},
		{Op: CtlBorrowMAC, Kind: DeviceNIC, Dev: 4},
		{Op: CtlMigrate, Kind: DeviceNIC, IP: netstack.IPv4(10, 1, 2, 3), Dev: 5},
		{Op: CtlAllocRequest, Kind: DeviceNIC, IP: netstack.IPv4(10, 0, 0, 77)},
		{Op: CtlAssign, Kind: DeviceNIC, IP: netstack.IPv4(10, 0, 0, 77), Dev: 2, Aux: 6},
		{Op: CtlLinkDown, Kind: DeviceSSD, Dev: 12},
	}
	var buf [15]byte
	for i, m := range msgs {
		got := DecodeControl(EncodeControl(buf[:], m))
		if got != m {
			t.Fatalf("ctl %d round trip:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestControlPayloadFitsChannelSlot(t *testing.T) {
	// Every control opcode must fit the 15-byte payload of the smallest
	// (16 B) channel slot, so the one protocol works on every engine's link.
	var buf [15]byte
	for op := byte(CtlLinkDown); op <= CtlAssign; op++ {
		m := ControlMsg{
			Op: op, Kind: DeviceSSD, Dev: 65535, Aux: 65535,
			IP: 0xffffffff, Load: 1 << 60, LinkUp: true, AER: 65535, QueueDepth: 65535,
		}
		payload := EncodeControl(buf[:], m)
		if len(payload) != 15 {
			t.Fatalf("opcode %d encodes to %d bytes, want exactly 15", op, len(payload))
		}
		if !IsControlOp(payload[0]) {
			t.Fatalf("opcode %d not recognized as control", op)
		}
	}
}

func TestControlTelemetryLoadClamped(t *testing.T) {
	// Loads beyond 40 bits saturate on the wire rather than wrapping.
	var buf [15]byte
	m := ControlMsg{Op: CtlTelemetry, Kind: DeviceNIC, Dev: 1, Load: 1 << 60}
	got := DecodeControl(EncodeControl(buf[:], m))
	if got.Load != (1<<40)-1 {
		t.Fatalf("load = %d, want clamp to 2^40-1", got.Load)
	}
}

func TestDeviceKindString(t *testing.T) {
	if DeviceNIC.String() != "nic" || DeviceSSD.String() != "ssd" || DeviceKind(9).String() != "dev" {
		t.Fatal("DeviceKind.String mismatch")
	}
}
