package core

import (
	"testing"

	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
)

// tinyChan returns a 4-slot channel config: one cache line of 16 B slots,
// small enough to fill without a cooperating receiver.
func tinyChan() msgchan.Config {
	cfg := msgchan.DefaultConfig()
	cfg.Slots = 4
	return cfg
}

func TestLinkSetInsertionOrderAndDuplicates(t *testing.T) {
	s := NewLinkSet(DefaultPendingLimit)
	for _, peer := range []uint32{5, 1, 9} {
		s.Add(peer, nil)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	for i, want := range []uint32{5, 1, 9} {
		if s.All()[i].Peer != want {
			t.Fatalf("order[%d] = %d, want %d (insertion order)", i, s.All()[i].Peer, want)
		}
	}
	if s.Get(1).Peer != 1 || s.Get(7) != nil {
		t.Fatal("Get lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate peer accepted")
		}
	}()
	s.Add(5, nil)
}

func TestSendOrQueueBackpressureAccounting(t *testing.T) {
	eng, pool := testPool()
	hA := host.New(eng, 0, "A", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "B", pool, host.DefaultConfig())
	aEnd, bEnd, err := NewDuplexLink(pool, hA, hB, tinyChan())
	if err != nil {
		t.Fatal(err)
	}
	s := NewLinkSet(2) // backlogged beyond 2 parked messages
	l := s.Add(1, aEnd)
	eng.Go("test", func(p *sim.Proc) {
		// The 4-slot ring takes 4 messages; everything after parks.
		for i := byte(0); i < 8; i++ {
			l.SendOrQueue(p, []byte{i})
		}
		if l.Stats.Sent != 4 || l.Stats.SendFull == 0 {
			t.Errorf("sent=%d sendfull=%d, want 4 sent and >0 full", l.Stats.Sent, l.Stats.SendFull)
		}
		if l.PendingLen() != 4 || l.Stats.Deferred != 4 {
			t.Errorf("pending=%d deferred=%d, want 4/4", l.PendingLen(), l.Stats.Deferred)
		}
		if s.PendingCount() != 4 {
			t.Errorf("set pending count = %d", s.PendingCount())
		}
		// 4 parked > limit 2: backpressure is visible but nothing was dropped.
		if !l.Backlogged() || l.Stats.Overflow != 2 {
			t.Errorf("backlogged=%v overflow=%d, want true/2", l.Backlogged(), l.Stats.Overflow)
		}
		if l.Stats.PendingPeak != 4 {
			t.Errorf("pending peak = %d", l.Stats.PendingPeak)
		}
		// A full ring means DrainPending makes no progress and loses nothing.
		if n := s.DrainPending(p); n != 0 {
			t.Errorf("drained %d from a full ring", n)
		}
		// Peer drains the ring; the redrive then goes through in FIFO order.
		for i := byte(0); i < 4; i++ {
			msg, ok := bEnd.Poll(p)
			if !ok || msg[0] != i {
				t.Fatalf("ring msg %d: ok=%v got=%v", i, ok, msg[:1])
			}
		}
		if n := s.DrainPending(p); n != 4 {
			t.Errorf("redrove %d, want 4", n)
		}
		s.FlushAll(p)
		for i := byte(4); i < 8; i++ {
			msg, ok := bEnd.Poll(p)
			if !ok || msg[0] != i {
				t.Fatalf("redriven msg %d: ok=%v got=%v", i, ok, msg[:1])
			}
		}
		if l.PendingLen() != 0 || l.Backlogged() {
			t.Error("pending queue not empty after drain")
		}
		if l.Stats.Redrives != 4 || l.Stats.Sent != 8 {
			t.Errorf("redrives=%d sent=%d, want 4/8", l.Stats.Redrives, l.Stats.Sent)
		}
	})
	eng.Run()
}

func TestPollEachBurstAndStats(t *testing.T) {
	eng, pool := testPool()
	hA := host.New(eng, 0, "A", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "B", pool, host.DefaultConfig())
	aEnd, bEnd, err := NewDuplexLink(pool, hA, hB, msgchan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewLinkSet(DefaultPendingLimit)
	l := s.Add(7, bEnd)
	eng.Go("test", func(p *sim.Proc) {
		for i := byte(0); i < 6; i++ {
			if !aEnd.Send(p, []byte{i}) {
				t.Fatalf("send %d failed", i)
			}
		}
		aEnd.Flush(p)
		var got []byte
		// Burst of 4 caps the first pass; a second pass drains the rest.
		n := s.PollEach(p, 4, func(_ *sim.Proc, pl *Link, payload []byte) {
			if pl != l {
				t.Error("handler got wrong link")
			}
			got = append(got, payload[0])
		})
		if n != 4 {
			t.Fatalf("first burst handled %d, want 4", n)
		}
		n = s.PollEach(p, 4, func(_ *sim.Proc, _ *Link, payload []byte) {
			got = append(got, payload[0])
		})
		if n != 2 {
			t.Fatalf("second burst handled %d, want 2", n)
		}
		for i, b := range got {
			if b != byte(i) {
				t.Fatalf("out of order: got %v", got)
			}
		}
		if l.Stats.Received != 6 {
			t.Errorf("received = %d", l.Stats.Received)
		}
		agg := s.Stats()
		if agg.Received != 6 {
			t.Errorf("aggregate received = %d", agg.Received)
		}
	})
	eng.Run()
}
