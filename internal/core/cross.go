package core

import (
	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// CrossEnd is a ChanEnd whose peer lives on another simulation partition.
//
// In partitioned execution a message channel cannot be modeled as the usual
// shared ring — the two drivers execute on different partition goroutines
// and a ring poll would race. Instead each direction is a declared
// sim.CrossLink: a send stamps the message with its delivery time (send
// time + the channel's latency) and the partition barrier merges it into
// the receiver's timeline in canonical order, where a callback appends it
// to a receiver-local queue. All state is single-partition: the outbound
// link is only touched by the sender's partition, the inbound queue only by
// the receiver's, so the end is race-free by construction and the delivered
// traffic is byte-identical regardless of worker interleaving.
//
// Backpressure: Send never reports full — cross-partition flooding is
// bounded (and diagnosed) by the group's inbox cap rather than a modeled
// ring size, since the sender cannot observe receiver-side occupancy
// without breaking partition isolation.
type CrossEnd struct {
	out  *sim.CrossLink
	lat  sim.Duration
	peer *CrossEnd

	// Inbound queue; owned by the receiving partition.
	inq   []crossMsg
	head  int
	inLat metrics.Histogram
}

type crossMsg struct {
	payload []byte
	sentAt  sim.Duration
}

// NewCrossChannel builds a duplex cross-partition channel between
// partitions a and b of group g: every message becomes visible to the
// peer's Poll exactly lat after the send. lat doubles as the declared
// lookahead for both directions, so it must honor the group's latency
// floor. Returns a's end and b's end.
func NewCrossChannel(g *sim.Group, a, b *sim.Engine, lat sim.Duration) (aEnd, bEnd *CrossEnd) {
	aEnd = &CrossEnd{out: g.Link(a, b, lat), lat: lat}
	bEnd = &CrossEnd{out: g.Link(b, a, lat), lat: lat}
	aEnd.peer, bEnd.peer = bEnd, aEnd
	return aEnd, bEnd
}

// Send transmits one message toward the peer partition; it is copied
// immediately so the caller may reuse its buffer. Always succeeds (see the
// type comment on backpressure).
func (c *CrossEnd) Send(p *sim.Proc, payload []byte) bool {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	sentAt := p.Now()
	dst := c.peer
	c.out.Send(sentAt+c.lat, func() {
		dst.inq = append(dst.inq, crossMsg{payload: cp, sentAt: sentAt})
	})
	return true
}

// Poll drains one inbound message if available. Delivery is FIFO per
// direction: cross events merge in (time, source partition, source
// sequence) order and one direction has one source.
func (c *CrossEnd) Poll(p *sim.Proc) ([]byte, bool) {
	if c.head >= len(c.inq) {
		if c.head > 0 {
			c.inq = c.inq[:0]
			c.head = 0
		}
		return nil, false
	}
	m := c.inq[c.head]
	c.inq[c.head] = crossMsg{}
	c.head++
	c.inLat.Record(p.Now() - m.sentAt)
	return m.payload, true
}

// Flush is a no-op: cross sends are not line-batched.
func (c *CrossEnd) Flush(p *sim.Proc) {}

// InLatency returns the inbound delivery-latency histogram (time from the
// peer's Send to this end's draining Poll).
func (c *CrossEnd) InLatency() *metrics.Histogram { return &c.inLat }

// Pending returns the inbound messages delivered but not yet polled.
func (c *CrossEnd) Pending() int { return len(c.inq) - c.head }

// Latency returns the channel's one-way delivery latency.
func (c *CrossEnd) Latency() sim.Duration { return c.lat }
