package core

import (
	"testing"
	"time"

	"oasis/internal/host"
	"oasis/internal/sim"
)

// stubLoop returns 1 item per poll for the first busy polls, then 0 forever.
type stubLoop struct {
	name  string
	busy  int
	polls int
}

func (s *stubLoop) LoopName() string { return s.name }
func (s *stubLoop) PollOnce(p *sim.Proc) int {
	s.polls++
	if s.polls <= s.busy {
		return 1
	}
	return 0
}

func TestDriverMultiplexesLoops(t *testing.T) {
	eng, pool := testPool()
	h := host.New(eng, 0, "h", pool, host.DefaultConfig())
	d := NewDriver(h, "h/engines", DriverConfig{LoopCost: 100 * time.Nanosecond, IdleBackoff: time.Microsecond})
	a := &stubLoop{name: "h/a", busy: 10}
	b := &stubLoop{name: "h/b", busy: 25}
	d.Attach(a)
	d.Attach(b)
	if len(d.Loops()) != 2 {
		t.Fatalf("loops = %d", len(d.Loops()))
	}
	d.Start()
	d.Start() // idempotent
	eng.RunUntil(sim.Duration(time.Millisecond))
	// One core, every iteration polls BOTH loops — that is the §5.1 sharing.
	if a.polls != b.polls {
		t.Fatalf("loops polled unevenly: %d vs %d", a.polls, b.polls)
	}
	if d.Processed != 35 {
		t.Fatalf("processed = %d, want 10+25", d.Processed)
	}
	if d.IdleIterations == 0 || d.IdleIterations >= d.Iterations {
		t.Fatalf("iterations=%d idle=%d: backoff accounting broken", d.Iterations, d.IdleIterations)
	}
	// With a 100ns loop cost and 1µs idle cap, a busy-polling core would run
	// ~10k iterations/ms; backoff must have cut that well down.
	if d.Iterations > 5000 {
		t.Fatalf("%d iterations in 1ms: idle backoff not applied", d.Iterations)
	}
}

func TestDriverAttachAfterStartPanics(t *testing.T) {
	eng, pool := testPool()
	h := host.New(eng, 0, "h", pool, host.DefaultConfig())
	d := NewDriver(h, "h/engines", DriverConfig{LoopCost: time.Microsecond})
	d.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("attach after Start accepted")
		}
	}()
	d.Attach(&stubLoop{name: "late"})
	_ = eng
}

func TestNextIdleDoublesToCap(t *testing.T) {
	start, cap := sim.Duration(100), sim.Duration(1000)
	cur := sim.Duration(0)
	want := []sim.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		cur = NextIdle(cur, start, cap)
		if cur != w {
			t.Fatalf("step %d: idle = %v, want %v", i, cur, w)
		}
	}
	if NextIdle(500, 100, 0) != 0 {
		t.Fatal("zero cap must disable backoff (busy-poll)")
	}
}

func TestEngineStatsSurfaceBufferExhaustion(t *testing.T) {
	_, pool := testPool()
	region, _ := pool.Alloc(8192)
	a, err := NewBufferArea(region, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := a.Alloc(); !ok {
			break
		}
	}
	a.Free(region.Base)
	// Two more failures on the already-empty area.
	a.Alloc()
	a.Alloc()
	s := EngineStats{Name: "fe", Links: LinkStats{Sent: 3}}
	s.AccumulateArea(a)
	s.AccumulateArea(nil) // engines without an RX area pass nil
	if s.BufAllocs != 5 || s.BufFrees != 1 || s.BufAllocFails != 2 {
		t.Fatalf("stats = %+v, want allocs 5 frees 1 fails 2", s)
	}
	if s.Links.Sent != 3 {
		t.Fatal("link stats clobbered by area accumulation")
	}
}
