package core

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
)

func testPool() (*sim.Engine, *cxl.Pool) {
	eng := sim.New()
	return eng, cxl.NewPool(eng, 1<<24, cxl.DefaultParams())
}

func TestBufferAreaAllocFreeCycle(t *testing.T) {
	_, pool := testPool()
	region, _ := pool.Alloc(8192)
	a, err := NewBufferArea(region, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != 4 || a.FreeCount() != 4 {
		t.Fatalf("capacity=%d free=%d", a.Capacity(), a.FreeCount())
	}
	seen := map[int64]bool{}
	var addrs []int64
	for i := 0; i < 4; i++ {
		addr, ok := a.Alloc()
		if !ok || seen[addr] || !a.Owns(addr) {
			t.Fatalf("alloc %d: addr=%#x ok=%v dup=%v", i, addr, ok, seen[addr])
		}
		seen[addr] = true
		addrs = append(addrs, addr)
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("alloc succeeded on empty area")
	}
	if a.AllocFails != 1 {
		t.Fatalf("AllocFails = %d", a.AllocFails)
	}
	for _, addr := range addrs {
		a.Free(addr)
	}
	if a.FreeCount() != 4 {
		t.Fatalf("free count after cycle = %d", a.FreeCount())
	}
}

func TestBufferAreaRejectsUnalignedSize(t *testing.T) {
	_, pool := testPool()
	region, _ := pool.Alloc(8192)
	if _, err := NewBufferArea(region, 100); err == nil {
		t.Fatal("unaligned buffer size accepted")
	}
	if _, err := NewBufferArea(region, 1<<20); err == nil {
		t.Fatal("oversized buffer size accepted")
	}
}

func TestBufferAreaFreeForeignAddressPanics(t *testing.T) {
	_, pool := testPool()
	region, _ := pool.Alloc(8192)
	a, _ := NewBufferArea(region, 2048)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic freeing a foreign address")
		}
	}()
	a.Free(region.Base + 1) // not a buffer base
}

func TestWritebackInvalidateRangeMakeBufferVisible(t *testing.T) {
	eng, pool := testPool()
	hA := host.New(eng, 0, "A", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "B", pool, host.DefaultConfig())
	region, _ := pool.Alloc(4096)
	payload := bytes.Repeat([]byte{0x5A}, 1500)
	eng.Go("test", func(p *sim.Proc) {
		// A writes a packet and publishes it.
		hA.Cache.Write(p, region.Base, payload, "payload")
		WritebackRange(p, hA.Cache, region.Base, len(payload), "payload")
		p.Sleep(time.Microsecond)
		// B reads it fresh.
		buf := make([]byte, len(payload))
		hB.Cache.Read(p, region.Base, buf, "payload")
		if !bytes.Equal(buf, payload) {
			t.Error("cross-host buffer mismatch after WritebackRange")
		}
		// A recycles the buffer with new contents; B must invalidate to see
		// them (this is the frontend's RX-buffer discipline).
		payload2 := bytes.Repeat([]byte{0xA5}, 1500)
		hA.Cache.Write(p, region.Base, payload2, "payload")
		WritebackRange(p, hA.Cache, region.Base, len(payload2), "payload")
		p.Sleep(time.Microsecond)
		hB.Cache.Read(p, region.Base, buf, "payload")
		if bytes.Equal(buf, payload2) {
			t.Error("B saw fresh data without invalidating — cache model broken")
		}
		InvalidateRange(p, hB.Cache, region.Base, len(payload2), "payload")
		hB.Cache.Read(p, region.Base, buf, "payload")
		if !bytes.Equal(buf, payload2) {
			t.Error("B still stale after InvalidateRange")
		}
	})
	eng.Run()
}

func TestDuplexLinkBothDirections(t *testing.T) {
	eng, pool := testPool()
	hA := host.New(eng, 0, "A", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "B", pool, host.DefaultConfig())
	aEnd, bEnd, err := NewDuplexLink(pool, hA, hB, msgchan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := false
	eng.Go("a", func(p *sim.Proc) {
		if !aEnd.Send(p, []byte{1, 2, 3}) {
			t.Error("a send failed")
		}
		aEnd.Flush(p)
		for {
			if msg, ok := aEnd.Poll(p); ok {
				if msg[0] != 9 {
					t.Errorf("a received %v", msg[:1])
				}
				done = true
				eng.Shutdown()
				return
			}
		}
	})
	eng.Go("b", func(p *sim.Proc) {
		for {
			if msg, ok := bEnd.Poll(p); ok {
				if msg[0] != 1 || msg[1] != 2 || msg[2] != 3 {
					t.Errorf("b received %v", msg[:3])
				}
				if !bEnd.Send(p, []byte{9}) {
					t.Error("b send failed")
				}
				bEnd.Flush(p)
				return
			}
		}
	})
	eng.Run()
	if !done {
		t.Fatal("round trip incomplete")
	}
}

func TestDuplexLinkRequiresPodHosts(t *testing.T) {
	eng, pool := testPool()
	hA := host.New(eng, 0, "A", pool, host.DefaultConfig())
	client := host.New(eng, 1, "client", nil, host.DefaultConfig())
	if _, _, err := NewDuplexLink(pool, hA, client, msgchan.DefaultConfig()); err == nil {
		t.Fatal("link to a non-pod host accepted")
	}
}
