package oasis

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"oasis/internal/allocator"
	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/faults"
	"oasis/internal/host"
	"oasis/internal/netengine"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/obs"
	"oasis/internal/raft"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
	"oasis/internal/topo"
)

// Typed topology-mutation errors. Callers match them with errors.Is; the
// builders wrap them with node-specific context.
var (
	// ErrFrozen marks mutations the topology cannot absorb after Start —
	// only the baseline local-driver path, which exists to reproduce the
	// paper's static Junction setup, stays construct-then-run.
	ErrFrozen = errors.New("topology is frozen after Start for baseline local drivers")
	// ErrDuplicateNode marks an add whose node id is already in the graph.
	ErrDuplicateNode = errors.New("duplicate node id")
	// ErrNoSuchNode marks an operation on a node the graph does not hold.
	ErrNoSuchNode = errors.New("no such node")
	// ErrNodeInUse marks a removal blocked by dependents (instances on a
	// NIC, volumes on an SSD, the allocator or a raft replica on a host).
	ErrNodeInUse = errors.New("node is in use")
	// ErrHostNotEmpty marks a host removal while instances or device
	// backends still live on it; migrate or remove them first.
	ErrHostNotEmpty = errors.New("host still has live instances or devices")
)

// Host is one pod member: the underlying host model, its frontend driver,
// and any backend drivers for locally-attached NICs.
type Host struct {
	H   *host.Host
	FE  *netengine.Frontend
	BEs []*netengine.Backend
	// SFE is the storage frontend (created on demand by AddSSD/AddVolume).
	SFE *storengine.Frontend
	// LD is the baseline Junction-style local driver (set by AddLocalNIC).
	LD *netengine.LocalDriver
	// Driver is the host's shared driver core when Config.SharedHostCore is
	// set: every engine loop on this host polls from it.
	Driver *core.Driver

	removed bool
}

// Removed reports whether the host has been removed from the topology (its
// slot in Hosts stays, so host indices remain stable).
func (h *Host) Removed() bool { return h.removed }

// SSDDev is one pooled SSD: the device and its storage backend driver.
type SSDDev struct {
	ID     uint16
	Dev    *ssd.SSD
	BE     *storengine.Backend
	Backup bool

	dmaPort *cxl.Port
}

// NIC is one pooled NIC: the device and its backend driver.
type NIC struct {
	ID     uint16
	Dev    *nic.NIC
	BE     *netengine.Backend
	SwPort *netsw.Port
	Backup bool

	dmaPort *cxl.Port
}

// Instance is a container instance: its frontend attachment and its
// network stack. Exactly one of Port (pooled, via the Oasis frontend) or
// LocalPort (baseline, via a LocalDriver) is set.
type Instance struct {
	Port      *netengine.InstancePort
	LocalPort *netengine.LocalPort
	Stack     *netstack.Stack
	host      *Host
	topo      *Topology
}

// IPAddr returns the instance's address.
func (i *Instance) IPAddr() netstack.IP { return i.Stack.IP() }

// Host returns the pod host the instance runs on.
func (i *Instance) Host() *Host { return i.host }

// IsPooled reports whether the instance attaches to the pooled datapath
// (an Oasis frontend port) rather than a baseline local driver.
func (i *Instance) IsPooled() bool { return i.Port != nil }

// Assign sets the instance's primary and backup NICs directly (bypassing
// the allocator). backup may be 0. Baseline local instances have no pooled
// frontend port to assign; that returns a descriptive error instead of the
// historical nil-pointer panic.
func (i *Instance) Assign(primary, backup uint16) error {
	if i.Port == nil {
		return fmt.Errorf("oasis: Assign on baseline local instance %v: it has no pooled frontend port (AddLocalInstance attaches to the host's local driver; use AddInstance for the pooled datapath)", i.IPAddr())
	}
	i.Port.Assign(primary, backup)
	return nil
}

// RequestAllocation asks the pod-wide allocator for a NIC assignment.
// Baseline local instances need no assignment; the request is ignored.
func (i *Instance) RequestAllocation() {
	if i.Port == nil {
		return
	}
	i.Port.RequestAllocation()
}

// WaitReady blocks until the instance can transmit. Baseline local
// instances are ready immediately.
func (i *Instance) WaitReady(p *Proc, timeout Duration) bool {
	if i.Port == nil {
		return true
	}
	return i.Port.WaitReady(p, timeout)
}

// Client is a load-generator node outside the pod, attached directly to
// the ToR switch (the paper's "network load driver", §5). In a per-host
// partitioned pod (NewPerHostPod) each client is a simulation partition of
// its own, attached through a netsw.RemotePort — the cable extension is
// the declared cross-partition lookahead — so client-side load generation
// runs in parallel with the pod core.
type Client struct {
	Stack  *netstack.Stack
	SwPort *netsw.Port
	mac    netsw.MAC
	// eng is the engine the client's stack and application processes run
	// on: the pod engine normally, the client's own partition in per-host
	// mode.
	eng *sim.Engine
	// remote is the cross-partition attachment in per-host mode (nil when
	// the client shares the pod engine).
	remote *netsw.RemotePort
}

// Transmit implements netstack.Endpoint for the raw client.
func (c *Client) Transmit(p *Proc, frame []byte) {
	var f netsw.Frame
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	f.Bytes = frame
	if c.remote != nil {
		c.remote.Send(&f)
		return
	}
	c.SwPort.Send(&f)
}

// DeliverFrame implements netsw.Sink for the raw client.
func (c *Client) DeliverFrame(f *netsw.Frame) { c.Stack.DeliverFrame(f.Bytes) }

// Go spawns an application process in the client's execution domain: its
// own partition in per-host mode, the pod engine otherwise (where this is
// identical to Topology.Go). Processes that touch the client's stack must
// be spawned here — in per-host mode the stack lives on the client's
// partition and may not be driven from the pod's.
func (c *Client) Go(name string, fn func(p *Proc)) { c.eng.Go(name, fn) }

// Eng returns the engine the client executes on.
func (c *Client) Eng() *sim.Engine { return c.eng }

// Remote reports whether the client runs on a partition of its own.
func (c *Client) Remote() bool { return c.remote != nil }

// Topology is the incremental node graph behind a pod: the engine, the CXL
// pool, the ToR switch, and every host, device, instance, and client node.
// Nodes are added one at a time through the ...Err builders and may be
// removed again; Start wires whatever exists in one deterministic pass,
// and nodes added afterwards are wired immediately (links to every peer,
// driver launch, metric registration). Pod and Cluster are thin layers
// over it.
type Topology struct {
	Eng    *sim.Engine
	Pool   *cxl.Pool
	Switch *netsw.Switch
	Hosts  []*Host
	NICs   map[uint16]*NIC
	SSDs   map[uint16]*SSDDev
	Alloc  *allocator.Allocator
	// Raft holds the allocator's replicas when Config.RaftReplicas > 0;
	// Raft[0] runs beside the allocator and is the expected leader.
	Raft []*raft.Node

	cfg       Config
	obs       *obs.Registry
	nicDir    map[uint16]netsw.MAC
	nextNICID uint16
	nextSSDID uint16
	nextMAC   uint64
	instances []*Instance
	clients   []*Client
	started   bool
	injector  *faults.Injector

	// Identity scope: standalone pods are unscoped (flat names, the
	// historical scheme); pods inside a Cluster carry their pod index and
	// prefix every host, device, driver, and metric name with "pod<P>/".
	podIndex int
	scope    string
	// ownEngine is false for cluster pods sharing the cluster's engine.
	ownEngine bool

	// group is non-nil in per-host partitioned mode (NewPerHostPod, or a
	// per-host cluster): the pod core — hosts, pool, switch, devices,
	// instances — runs on Eng, while every AddClient gets a partition of
	// its own behind a RemotePort and AddGuest adds host-compute
	// partitions coupled through the CXL pool. Lifecycle calls drive the
	// group when the topology owns its engine.
	group *sim.Group
	// guests are the per-host compute partitions added with AddGuest.
	guests []*Guest

	// nodes is the graph's id set — one canonical topo-grammar key per
	// node — used to reject double-adds of the same id.
	nodes map[string]bool
	// obsDrivers dedupes driver-core registration across Start and late
	// node wiring (shared host cores appear once).
	obsDrivers map[*core.Driver]bool
}

// NewTopology creates an empty standalone topology with its own engine.
func NewTopology(cfg Config) *Topology {
	return newTopology(sim.New(), cfg, topo.Unscoped, true)
}

// newTopology builds the graph shell on an engine. podIndex scopes every
// name when the topology joins a cluster.
func newTopology(eng *sim.Engine, cfg Config, podIndex int, ownEngine bool) *Topology {
	return &Topology{
		Eng:        eng,
		Pool:       cxl.NewPool(eng, cfg.PoolBytes, cfg.CXL),
		Switch:     netsw.New(eng, cfg.Switch),
		NICs:       make(map[uint16]*NIC),
		SSDs:       make(map[uint16]*SSDDev),
		cfg:        cfg,
		obs:        obs.New(),
		nicDir:     make(map[uint16]netsw.MAC),
		nextNICID:  1,
		nextSSDID:  1,
		nextMAC:    0x02_00_00_00_00_01, // locally administered
		podIndex:   podIndex,
		scope:      topo.Scope(podIndex),
		ownEngine:  ownEngine,
		nodes:      make(map[string]bool),
		obsDrivers: make(map[*core.Driver]bool),
	}
}

// PodIndex returns the topology's index inside its cluster, or
// topo.Unscoped for a standalone pod.
func (t *Topology) PodIndex() int { return t.podIndex }

// Started reports whether Start has run (late adds wire immediately).
func (t *Topology) Started() bool { return t.started }

// Instances returns the number of placed instances.
func (t *Topology) Instances() int { return len(t.instances) }

// InstanceAt returns the i-th placed instance in placement order, or nil
// when out of range.
func (t *Topology) InstanceAt(i int) *Instance {
	if i < 0 || i >= len(t.instances) {
		return nil
	}
	return t.instances[i]
}

// addNode claims a canonical node id in the graph.
func (t *Topology) addNode(key string) error {
	if t.nodes[key] {
		return fmt.Errorf("oasis: %w: %s%s", ErrDuplicateNode, t.scope, key)
	}
	t.nodes[key] = true
	return nil
}

// dropNode releases a node id.
func (t *Topology) dropNode(key string) { delete(t.nodes, key) }

func (t *Topology) hostName(idx int) string { return topo.HostName(t.podIndex, idx) }
func (t *Topology) nicName(id uint16) string {
	return topo.DeviceName(t.podIndex, topo.KindNIC, int(id))
}
func (t *Topology) ssdName(id uint16) string {
	return topo.DeviceName(t.podIndex, topo.KindSSD, int(id))
}

// AddHostErr adds a pod member with a frontend driver. After Start the new
// host is wired immediately: data links to every pooled NIC backend, an
// allocator control link, and a running frontend loop.
func (t *Topology) AddHostErr() (*Host, error) {
	id := len(t.Hosts)
	if err := t.addNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindHost, Index: id}.String()); err != nil {
		return nil, err
	}
	h := host.New(t.Eng, id, t.hostName(id), t.Pool, t.cfg.Host)
	ph := &Host{H: h, FE: netengine.NewFrontend(h, t.Pool, t.cfg.Engine)}
	t.Hosts = append(t.Hosts, ph)
	if t.started {
		if err := t.wireHostLate(ph); err != nil {
			return nil, err
		}
	}
	return ph, nil
}

// AddHost is the legacy panic-on-error wrapper around AddHostErr.
func (t *Topology) AddHost() *Host {
	ph, err := t.AddHostErr()
	if err != nil {
		panic(err)
	}
	return ph
}

// allocMAC hands out a unique locally-administered MAC.
func (t *Topology) allocMAC() netsw.MAC {
	var m netsw.MAC
	v := t.nextMAC
	t.nextMAC++
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// checkHost validates a host argument.
func (t *Topology) checkHost(on *Host) error {
	if on == nil {
		return fmt.Errorf("oasis: %w: nil host", ErrNoSuchNode)
	}
	if on.removed {
		return fmt.Errorf("oasis: %w: %s was removed", ErrNoSuchNode, on.H.Name)
	}
	return nil
}

// AddNICErr attaches a pooled NIC to a host and creates its backend driver.
// backup marks the pod's reserved failover NIC (§3.3.3). After Start the
// NIC is wired immediately: links from every host frontend, an allocator
// link, and a running device + backend loop.
func (t *Topology) AddNICErr(on *Host, backup bool) (*NIC, error) {
	if err := t.checkHost(on); err != nil {
		return nil, err
	}
	id := t.nextNICID
	if err := t.addNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindNIC, Index: int(id)}.String()); err != nil {
		return nil, err
	}
	t.nextNICID++
	mac := t.allocMAC()
	name := t.nicName(id)
	dma := t.Pool.AttachPort(name + "-dma")
	dev := nic.New(t.Eng, name, mac, dma, netstack.FlowKey, t.cfg.NIC)
	swPort := t.Switch.AttachPort(name, dev)
	dev.Connect(swPort)
	dev.SetSnooper(on.H.Cache) // DMA snoops the owning host's cache (§3.2.1)
	be, err := netengine.NewBackend(on.H, id, dev, t.Pool, t.nicDir, t.cfg.Engine)
	if err != nil {
		return nil, err
	}
	t.nicDir[id] = mac
	n := &NIC{ID: id, Dev: dev, BE: be, SwPort: swPort, Backup: backup, dmaPort: dma}
	t.NICs[id] = n
	on.BEs = append(on.BEs, be)
	if t.started {
		if err := t.wireNICLate(on, n); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// AddNIC is the legacy panic-on-error wrapper around AddNICErr.
func (t *Topology) AddNIC(on *Host, backup bool) *NIC {
	n, err := t.AddNICErr(on, backup)
	if err != nil {
		panic(err)
	}
	return n
}

// AddLocalNICErr attaches a NIC served by a Junction-style local driver —
// the evaluation baseline (§5.1): one intermediary core, no pooling, no
// message channels. Instances added with AddLocalInstance use it. The
// baseline path is construct-then-run by design and stays frozen after
// Start.
func (t *Topology) AddLocalNICErr(on *Host) (*NIC, error) {
	if t.started {
		return nil, fmt.Errorf("oasis: %w (AddLocalNIC)", ErrFrozen)
	}
	if err := t.checkHost(on); err != nil {
		return nil, err
	}
	if on.LD != nil {
		return nil, fmt.Errorf("oasis: host %s already has a local driver", on.H.Name)
	}
	id := t.nextNICID
	if err := t.addNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindNIC, Index: int(id)}.String()); err != nil {
		return nil, err
	}
	t.nextNICID++
	mac := t.allocMAC()
	name := t.nicName(id)
	dma := t.Pool.AttachPort(name + "-dma")
	dev := nic.New(t.Eng, name, mac, dma, netstack.FlowKey, t.cfg.NIC)
	swPort := t.Switch.AttachPort(name, dev)
	dev.Connect(swPort)
	dev.SetSnooper(on.H.Cache)
	ld, err := netengine.NewLocalDriver(on.H, dev, t.Pool, t.cfg.Engine)
	if err != nil {
		return nil, err
	}
	on.LD = ld
	n := &NIC{ID: id, Dev: dev, SwPort: swPort, dmaPort: dma}
	t.NICs[id] = n
	return n, nil
}

// AddLocalNIC is the legacy panic-on-error wrapper around AddLocalNICErr.
func (t *Topology) AddLocalNIC(on *Host) *NIC {
	n, err := t.AddLocalNICErr(on)
	if err != nil {
		panic(err)
	}
	return n
}

// AddLocalInstanceErr launches an instance on the host's baseline local
// driver. Like the driver itself, baseline instances are pre-Start only.
func (t *Topology) AddLocalInstanceErr(on *Host, ip netstack.IP) (*Instance, error) {
	if t.started {
		return nil, fmt.Errorf("oasis: %w (AddLocalInstance)", ErrFrozen)
	}
	if err := t.checkHost(on); err != nil {
		return nil, err
	}
	if on.LD == nil {
		return nil, fmt.Errorf("oasis: AddLocalInstance requires AddLocalNIC first")
	}
	if err := t.addNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindInstance, Name: ip.String()}.String()); err != nil {
		return nil, err
	}
	lp, err := on.LD.AddInstance(ip)
	if err != nil {
		t.dropNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindInstance, Name: ip.String()}.String())
		return nil, err
	}
	stack := netstack.NewStack(t.Eng, t.scope+fmt.Sprintf("inst-%v", ip), ip, lp.CurrentMAC, lp, t.cfg.Stack)
	lp.AttachStack(stack)
	inst := &Instance{LocalPort: lp, Stack: stack, host: on, topo: t}
	t.instances = append(t.instances, inst)
	return inst, nil
}

// AddLocalInstance is the legacy panic-on-error wrapper around
// AddLocalInstanceErr.
func (t *Topology) AddLocalInstance(on *Host, ip netstack.IP) *Instance {
	inst, err := t.AddLocalInstanceErr(on, ip)
	if err != nil {
		panic(err)
	}
	return inst
}

// AddSSDErr attaches a pooled SSD of the given capacity (in 4 KiB blocks)
// to a host and creates its storage backend driver (§3.4).
func (t *Topology) AddSSDErr(on *Host, capacityBlocks uint64) (*SSDDev, error) {
	return t.addSSD(on, capacityBlocks, false)
}

// AddSSD is the legacy panic-on-error wrapper around AddSSDErr.
func (t *Topology) AddSSD(on *Host, capacityBlocks uint64) *SSDDev {
	d, err := t.AddSSDErr(on, capacityBlocks)
	if err != nil {
		panic(err)
	}
	return d
}

// AddBackupSSDErr attaches the pod's reserved backup drive — the §3.3.3
// backup-NIC mechanism applied to storage. Every volume on other drives is
// mirrored onto it (RAID-1 style) by the storage frontends, and the
// allocator re-binds volumes onto it when their primary drive fails. A pod
// has at most one backup drive; it should be at least as large as the sum
// of the volumes it protects.
func (t *Topology) AddBackupSSDErr(on *Host, capacityBlocks uint64) (*SSDDev, error) {
	for _, id := range t.ssdIDs() {
		if t.SSDs[id].Backup {
			return nil, fmt.Errorf("oasis: pod already has backup SSD %d", id)
		}
	}
	return t.addSSD(on, capacityBlocks, true)
}

// AddBackupSSD is the panic-on-error wrapper around AddBackupSSDErr.
func (t *Topology) AddBackupSSD(on *Host, capacityBlocks uint64) *SSDDev {
	d, err := t.AddBackupSSDErr(on, capacityBlocks)
	if err != nil {
		panic(err)
	}
	return d
}

func (t *Topology) addSSD(on *Host, capacityBlocks uint64, backup bool) (*SSDDev, error) {
	if err := t.checkHost(on); err != nil {
		return nil, err
	}
	id := t.nextSSDID
	if err := t.addNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindSSD, Index: int(id)}.String()); err != nil {
		return nil, err
	}
	t.nextSSDID++
	name := t.ssdName(id)
	dma := t.Pool.AttachPort(name + "-dma")
	dev := ssd.New(t.Eng, name, dma, t.cfg.SSD)
	be := storengine.NewBackend(on.H, id, dev, capacityBlocks, t.cfg.Storage)
	d := &SSDDev{ID: id, Dev: dev, BE: be, Backup: backup, dmaPort: dma}
	t.SSDs[id] = d
	if t.started {
		if err := t.wireSSDLate(on, d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// storageFE returns (creating and, post-Start, wiring if needed) a host's
// storage frontend.
func (t *Topology) storageFE(on *Host) (*storengine.Frontend, error) {
	if on.SFE == nil {
		on.SFE = storengine.NewFrontend(on.H, t.Pool, t.cfg.Storage)
		if t.started {
			if err := t.wireStorageFELate(on); err != nil {
				return nil, err
			}
		}
	}
	return on.SFE, nil
}

// AddVolumeErr provisions a block volume for an instance on a pooled SSD.
// The instance's host is taken from the instance itself (recorded at
// AddInstance time), so no pod-wide scan is needed. Volumes may be added
// after Start: registration rides the normal request path.
func (t *Topology) AddVolumeErr(inst *Instance, ssdID uint16, blocks uint64) (*storengine.Volume, error) {
	if inst == nil || inst.host == nil {
		return nil, fmt.Errorf("oasis: AddVolume: instance has no host (not built by AddInstance/AddLocalInstance)")
	}
	fe, err := t.storageFE(inst.host)
	if err != nil {
		return nil, err
	}
	return fe.AddVolume(inst.IPAddr(), ssdID, blocks)
}

// AddVolume is the legacy panic-on-error wrapper around AddVolumeErr.
func (t *Topology) AddVolume(inst *Instance, ssdID uint16, blocks uint64) *storengine.Volume {
	vol, err := t.AddVolumeErr(inst, ssdID, blocks)
	if err != nil {
		panic(err)
	}
	return vol
}

// AddInstanceErr launches a container instance on a pod host. After Start
// the instance's network stack is started immediately.
func (t *Topology) AddInstanceErr(on *Host, ip netstack.IP) (*Instance, error) {
	if err := t.checkHost(on); err != nil {
		return nil, err
	}
	key := topo.Ref{Pod: topo.Unscoped, Kind: topo.KindInstance, Name: ip.String()}.String()
	if err := t.addNode(key); err != nil {
		return nil, err
	}
	port, err := on.FE.AddInstance(ip)
	if err != nil {
		t.dropNode(key)
		return nil, err
	}
	name := t.scope + fmt.Sprintf("inst-%v", ip)
	stack := netstack.NewStack(t.Eng, name, ip, port.CurrentMAC, port, t.cfg.Stack)
	port.AttachStack(stack)
	inst := &Instance{Port: port, Stack: stack, host: on, topo: t}
	t.instances = append(t.instances, inst)
	if t.started {
		stack.Start()
	}
	return inst, nil
}

// AddInstance is the legacy panic-on-error wrapper around AddInstanceErr.
func (t *Topology) AddInstance(on *Host, ip netstack.IP) *Instance {
	inst, err := t.AddInstanceErr(on, ip)
	if err != nil {
		panic(err)
	}
	return inst
}

// AddClientErr attaches a raw load-generator node to the switch. After
// Start its stack is started immediately. In per-host mode the client
// becomes a simulation partition of its own: the switch attachment is a
// RemotePort (one extra cable hop each way, declared as lookahead) and the
// client's stack — plus anything spawned with Client.Go — executes on the
// new partition, in parallel with the pod core.
func (t *Topology) AddClientErr(ip netstack.IP) (*Client, error) {
	name := t.scope + fmt.Sprintf("client-%v", ip)
	c := &Client{mac: t.allocMAC(), eng: t.Eng}
	if t.group != nil {
		c.eng = t.group.AddPartition()
		c.remote = t.Switch.AttachRemotePort(t.group, name, c.eng, c, 0)
		c.SwPort = c.remote.Port()
	} else {
		c.SwPort = t.Switch.AttachPort(name, c)
	}
	mac := c.mac
	c.Stack = netstack.NewStack(c.eng, name, ip,
		func() netsw.MAC { return mac }, c, t.cfg.Stack)
	t.clients = append(t.clients, c)
	if t.started {
		c.Stack.Start()
	}
	return c, nil
}

// AddClient is the legacy panic-on-error wrapper around AddClientErr.
func (t *Topology) AddClient(ip netstack.IP) *Client {
	c, err := t.AddClientErr(ip)
	if err != nil {
		panic(err)
	}
	return c
}

// Guest is a per-host compute partition (per-host mode only): application
// code that runs on a pod host's spare cores but is coupled to the pod
// only through channels over the CXL pool, so it can execute on a
// simulation partition of its own. The pool's intrinsic minimum cross-host
// event latency (cxl.Pool.CrossLatency — the cheaper of a line load and a
// posted write) is the declared lookahead in both directions.
type Guest struct {
	Eng *sim.Engine
	// Chan is the guest side of the duplex message channel to the pod
	// partition; PodChan is the pod side. Poll each end only from its own
	// partition's processes.
	Chan    *core.CrossEnd
	PodChan *core.CrossEnd
	host    *Host
}

// Host returns the pod host whose spare cores the guest models.
func (g *Guest) Host() *Host { return g.host }

// Go spawns an application process on the guest's partition.
func (g *Guest) Go(name string, fn func(p *Proc)) { g.Eng.Go(name, fn) }

// AddGuestErr adds a guest-compute partition on host h. Only per-host
// topologies (NewPerHostPod) can host guests: the guest needs a partition
// group to join. The returned guest's channel ends carry its RPCs to the
// pod at CXL-pool latency.
func (t *Topology) AddGuestErr(h *Host) (*Guest, error) {
	if t.group == nil {
		return nil, fmt.Errorf("oasis: AddGuest on %s needs a per-host pod (NewPerHostPod)", h.H.Name)
	}
	ge := t.group.AddPartition()
	gEnd, pEnd := core.NewCrossChannel(t.group, ge, t.Eng, t.Pool.CrossLatency())
	g := &Guest{Eng: ge, Chan: gEnd, PodChan: pEnd, host: h}
	t.guests = append(t.guests, g)
	return g, nil
}

// AddGuest is the panic-on-error wrapper around AddGuestErr.
func (t *Topology) AddGuest(h *Host) *Guest {
	g, err := t.AddGuestErr(h)
	if err != nil {
		panic(err)
	}
	return g
}

// nicIDs returns the pooled NIC ids in ascending order, so pod wiring and
// reports never depend on map iteration order (determinism).
func (t *Topology) nicIDs() []uint16 {
	ids := make([]uint16, 0, len(t.NICs))
	for id := range t.NICs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ssdIDs returns the pooled SSD ids in ascending order.
func (t *Topology) ssdIDs() []uint16 {
	ids := make([]uint16, 0, len(t.SSDs))
	for id := range t.SSDs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// backupSSDID returns the pod's reserved backup drive id (0 if none).
func (t *Topology) backupSSDID() uint16 {
	for _, id := range t.ssdIDs() {
		if t.SSDs[id].Backup {
			return id
		}
	}
	return 0
}

// allocHost returns the host the allocator runs on (host 0).
func (t *Topology) allocHost() *Host { return t.Hosts[0] }

// Start wires the control and data links (frontend↔backend full mesh,
// allocator links for every device backend) and launches every driver,
// device, and stack process. The wiring pass runs in one deterministic
// order; the topology stays mutable afterwards — late adds wire their node
// immediately, removals detach it.
func (t *Topology) Start() {
	if t.started {
		return
	}
	t.started = true
	nicIDs, ssdIDs := t.nicIDs(), t.ssdIDs()

	// Data links: every frontend to every backend.
	for _, ph := range t.Hosts {
		if ph.removed {
			continue
		}
		for _, id := range nicIDs {
			n := t.NICs[id]
			if n.BE == nil {
				continue // baseline local NIC: no backend driver
			}
			feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, n.BE.Host(), t.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			ph.FE.ConnectBackend(n.ID, n.Dev.MAC(), feEnd)
			n.BE.ConnectFrontend(ph.H.ID, beEnd)
		}
		if ph.SFE != nil {
			for _, id := range ssdIDs {
				d := t.SSDs[id]
				feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, d.BE.Host(), t.cfg.Storage.Chan)
				if err != nil {
					panic(err)
				}
				ph.SFE.ConnectBackend(d.ID, feEnd)
				d.BE.ConnectFrontend(ph.H.ID, beEnd)
			}
		}
	}

	// Backup-drive mirroring: every storage frontend mirrors its volumes
	// onto the pod's reserved backup drive (the §3.3.3 mechanism applied to
	// storage). Needs the backend mesh above so mirror registrations can
	// ride the normal request path.
	if bid := t.backupSSDID(); bid != 0 {
		for _, ph := range t.Hosts {
			if ph.removed {
				continue
			}
			if ph.SFE != nil {
				ph.SFE.SetBackupSSD(bid)
			}
		}
	}

	// Control plane: the allocator gets a link to every frontend and every
	// device backend — NIC and SSD backends report through the same path.
	if !t.cfg.NoAllocator && len(t.Hosts) > 0 {
		ah := t.allocHost().H // allocator runs on host 0
		t.Alloc = allocator.New(ah, t.cfg.Allocator)
		for _, ph := range t.Hosts {
			if ph.removed {
				continue
			}
			aEnd, feEnd, err := core.NewDuplexLink(t.Pool, ah, ph.H, t.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			t.Alloc.AddFrontend(ph.H.ID, aEnd)
			ph.FE.SetControlLink(feEnd)
		}
		for _, id := range nicIDs {
			n := t.NICs[id]
			if n.BE == nil {
				continue
			}
			aEnd, beEnd, err := core.NewDuplexLink(t.Pool, ah, n.BE.Host(), t.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			t.Alloc.AddNIC(allocator.NICInfo{
				ID:          n.ID,
				HostID:      n.BE.Host().ID,
				CapacityBps: t.cfg.Switch.PortBandwidth,
				Backup:      n.Backup,
			}, aEnd)
			n.BE.SetControlLink(beEnd)
		}
		for _, id := range ssdIDs {
			d := t.SSDs[id]
			aEnd, beEnd, err := core.NewDuplexLink(t.Pool, ah, d.BE.Host(), t.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			t.Alloc.AddSSD(allocator.SSDInfo{ID: d.ID, HostID: d.BE.Host().ID, Backup: d.Backup}, aEnd)
			d.BE.SetControlLink(beEnd)
		}
		// Storage frontends get a control link too: SSD failover commands
		// (volume re-binds, fencing epochs) are broadcast over it.
		for _, ph := range t.Hosts {
			if ph.removed || ph.SFE == nil {
				continue
			}
			aEnd, sfeEnd, err := core.NewDuplexLink(t.Pool, ah, ph.H, t.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			t.Alloc.AddStorageFrontend(ph.H.ID, aEnd)
			ph.SFE.SetControlLink(sfeEnd)
		}
		if t.cfg.RaftReplicas > 0 {
			t.setupRaft()
		}
		t.Alloc.Start()
	}

	// Shared host cores (§5.1): one driver core per host multiplexes the
	// host's frontend loops and locally-attached backend loops. Joins must
	// precede each engine's Start (which then just starts the shared core).
	if t.cfg.SharedHostCore {
		for _, ph := range t.Hosts {
			if ph.removed {
				continue
			}
			ph.Driver = core.NewDriver(ph.H, ph.H.Name+"/engines", core.DriverConfig{
				LoopCost:    t.cfg.Engine.LoopCost,
				IdleBackoff: t.cfg.Engine.IdleBackoff,
			})
			ph.FE.Join(ph.Driver)
			if ph.SFE != nil {
				ph.SFE.Join(ph.Driver)
			}
			for _, be := range ph.BEs {
				be.Join(ph.Driver)
			}
		}
		for _, id := range ssdIDs {
			d := t.SSDs[id]
			for _, ph := range t.Hosts {
				if ph.removed {
					continue
				}
				if ph.H == d.BE.Host() {
					d.BE.Join(ph.Driver)
					break
				}
			}
		}
	}

	// Launch everything.
	for _, id := range nicIDs {
		n := t.NICs[id]
		n.Dev.Start()
		if n.BE != nil {
			n.BE.Start()
		}
	}
	for _, id := range ssdIDs {
		d := t.SSDs[id]
		d.Dev.Start()
		d.BE.Start()
	}
	for _, ph := range t.Hosts {
		if ph.removed {
			continue
		}
		ph.FE.Start()
		if ph.SFE != nil {
			ph.SFE.Start()
		}
		if ph.LD != nil {
			ph.LD.Start()
		}
	}
	for _, inst := range t.instances {
		inst.Stack.Start()
	}
	for _, c := range t.clients {
		c.Stack.Start()
	}

	t.registerObs()
}

// Go spawns an application process on the pod partition. Per-host client
// workloads spawn with Client.Go, guest workloads with Guest.Go.
func (t *Topology) Go(name string, fn func(p *Proc)) { t.Eng.Go(name, fn) }

// Run executes d of virtual time and returns the clock — the whole
// partition group's in per-host mode. Cluster pods share the cluster
// engine; drive them with Cluster.Run instead.
func (t *Topology) Run(d Duration) Duration {
	if t.group != nil && t.ownEngine {
		return t.group.RunUntil(d)
	}
	return t.Eng.RunUntil(d)
}

// Shutdown unwinds all processes (end of an experiment) — on every
// partition in per-host mode. In group mode call it only from outside the
// simulation, between Run calls.
func (t *Topology) Shutdown() {
	if t.group != nil && t.ownEngine {
		t.group.Shutdown()
		return
	}
	t.Eng.Shutdown()
}

// Now returns the virtual clock: the committed (barrier) time in per-host
// mode.
func (t *Topology) Now() Duration {
	if t.group != nil && t.ownEngine {
		return t.group.Now()
	}
	return t.Eng.Now()
}

// Group returns the partition group behind a per-host topology, or nil
// for the ordinary single-engine (or cluster-driven) forms.
func (t *Topology) Group() *sim.Group { return t.group }

// PerHost reports whether clients (and guests) get partitions of their
// own.
func (t *Topology) PerHost() bool { return t.group != nil }

// FailNICPort injects the paper's §5.3 failure: the switch port connected
// to the NIC is disabled.
func (t *Topology) FailNICPort(id uint16) {
	if n, ok := t.NICs[id]; ok {
		n.SwPort.SetEnabled(false)
	}
}

// RestoreNICPort re-enables a failed port.
func (t *Topology) RestoreNICPort(id uint16) {
	if n, ok := t.NICs[id]; ok {
		n.SwPort.SetEnabled(true)
	}
}

// setupRaft builds the allocator's replica group: RaftReplicas nodes on the
// first hosts, RPCs over 64 B message channels, with the allocator's
// decisions proposed to the log before being acted on (§3.5).
func (t *Topology) setupRaft() {
	n := t.cfg.RaftReplicas
	if n < 3 || n%2 == 0 || n > len(t.Hosts) {
		panic(fmt.Sprintf("oasis: RaftReplicas = %d needs an odd count >= 3 and <= hosts", n))
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	trs := make([]*raft.ChannelTransport, n)
	for i := range trs {
		trs[i] = raft.NewChannelTransport(t.Eng, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := trs[i].ConnectPeer(t.Pool, t.Hosts[i].H, trs[j], t.Hosts[j].H); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n; i++ {
		cfg := raft.DefaultConfig()
		cfg.Seed = 11
		// Fail proposals fast: the allocator retries them with backoff (see
		// allocator.deferRetry), so a commit stuck behind a mid-election
		// group should return quickly rather than stall the control plane.
		cfg.ProposeLimit = 100 * time.Millisecond
		if i == 0 {
			// The allocator runs on host 0; bias it to win the first
			// election so proposals originate beside the leader.
			cfg.ElectionMin = 10 * time.Millisecond
			cfg.ElectionMax = 15 * time.Millisecond
		} else {
			cfg.ElectionMin = 40 * time.Millisecond
			cfg.ElectionMax = 60 * time.Millisecond
		}
		node := raft.New(t.Eng, i, ids, trs[i], nil, cfg)
		trs[i].Bind(node)
		t.Raft = append(t.Raft, node)
		node.Start()
	}
	t.Alloc.Replicate(&multiReplicator{nodes: t.Raft})
}

// multiReplicator adapts the raft group to the allocator's replication
// hook. Unlike a replicator pinned to one node, it proposes through
// whichever live replica currently leads, so allocator decisions survive
// the loss of the original leader (node 0's host crashing): after
// re-election the promoted follower carries the log and proposals resume
// through it.
type multiReplicator struct {
	nodes []*raft.Node
}

// Propose finds a live leader (bounded wait, exponential backoff while an
// election is in flight) and blocks until the command commits. A stopped
// node still claiming leadership is a zombie and is skipped.
func (r *multiReplicator) Propose(p *Proc, cmd []byte) bool {
	deadline := p.Now() + 120*time.Millisecond
	backoff := time.Millisecond
	for {
		for _, node := range r.nodes {
			if node.IsLeader() && !node.Stopped() {
				return node.Propose(p, cmd)
			}
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// Obs exposes the pod's metrics registry so applications and tests can
// register their own instruments alongside the built-in ones.
func (t *Topology) Obs() *obs.Registry { return t.obs }

// Stats samples every registered instrument at the current virtual time and
// returns a typed, deterministically ordered snapshot. Instruments are only
// read here — sampling costs no virtual time and never perturbs the run.
func (t *Topology) Stats() obs.Snapshot { return t.obs.Snapshot(t.Eng.Now()) }

// StatsReport returns a human-readable dump of the pod's counters: per-NIC
// traffic, per-port CXL bandwidth by category, driver counters, and
// allocator decisions. Examples and operators print it after a run. It is
// exactly Stats().String(); use Stats for programmatic access.
func (t *Topology) StatsReport() string { return t.Stats().String() }
