package oasis

import (
	"fmt"

	"oasis/internal/topo"
)

// RemoveInstanceErr detaches an instance from the topology: its volume (if
// any) is removed, the allocator forgets its placement, and the frontend
// drops its port. The caller is responsible for quiescing the instance's
// traffic first; its stack process idles afterwards (the engine is
// cooperative, an idle stack costs nothing). Baseline local instances are
// construct-then-run and cannot be removed.
func (t *Topology) RemoveInstanceErr(inst *Instance) error {
	idx := -1
	for i, in := range t.instances {
		if in == inst {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("oasis: %w: instance %v", ErrNoSuchNode, inst.IPAddr())
	}
	if inst.Port == nil {
		return fmt.Errorf("oasis: %w: baseline local instance %v cannot be removed", ErrNodeInUse, inst.IPAddr())
	}
	ip := inst.IPAddr()
	if sfe := inst.host.SFE; sfe != nil && sfe.Volume(ip) != nil {
		if err := sfe.RemoveVolume(ip); err != nil {
			return err
		}
	}
	if t.Alloc != nil {
		t.Alloc.ReleaseInstance(ip)
	}
	if err := inst.host.FE.RemoveInstance(ip); err != nil {
		return err
	}
	t.instances = append(t.instances[:idx], t.instances[idx+1:]...)
	t.dropNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindInstance, Name: ip.String()}.String())
	return nil
}

// RemoveHostErr removes a pod host. The host must be empty — no live
// instances (migrate or remove them first; ErrHostNotEmpty otherwise), no
// device backends, no volumes — and must not carry the allocator or a raft
// replica (ErrNodeInUse). The host's slot in Hosts is retained so host
// indices stay stable; after Start its driver cores are stalled for good.
func (t *Topology) RemoveHostErr(ph *Host) error {
	if err := t.checkHost(ph); err != nil {
		return err
	}
	idx := -1
	for i, h := range t.Hosts {
		if h == ph {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("oasis: %w: host not in this topology", ErrNoSuchNode)
	}
	live := 0
	for _, inst := range t.instances {
		if inst.host == ph {
			live++
		}
	}
	if live > 0 {
		return fmt.Errorf("oasis: %w: %s has %d live instance(s); migrate or remove them first",
			ErrHostNotEmpty, ph.H.Name, live)
	}
	for _, id := range t.nicIDs() {
		n := t.NICs[id]
		if (n.BE != nil && n.BE.Host() == ph.H) || (n.BE == nil && ph.LD != nil) {
			return fmt.Errorf("oasis: %w: %s still owns %s", ErrHostNotEmpty, ph.H.Name, t.nicName(id))
		}
	}
	for _, id := range t.ssdIDs() {
		if t.SSDs[id].BE.Host() == ph.H {
			return fmt.Errorf("oasis: %w: %s still owns %s", ErrHostNotEmpty, ph.H.Name, t.ssdName(id))
		}
	}
	if ph.SFE != nil && ph.SFE.VolumeCount() > 0 {
		return fmt.Errorf("oasis: %w: %s still serves %d volume(s)", ErrHostNotEmpty, ph.H.Name, ph.SFE.VolumeCount())
	}
	if idx == 0 && !t.cfg.NoAllocator {
		return fmt.Errorf("oasis: %w: %s hosts the pod allocator", ErrNodeInUse, ph.H.Name)
	}
	if t.cfg.RaftReplicas > 0 && idx < t.cfg.RaftReplicas {
		return fmt.Errorf("oasis: %w: %s carries raft replica %d", ErrNodeInUse, ph.H.Name, idx)
	}
	ph.removed = true
	if t.started {
		for _, d := range t.hostDrivers(ph) {
			d.Stall()
		}
		if t.Alloc != nil {
			t.Alloc.RemoveFrontend(ph.H.ID)
		}
	}
	t.dropNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindHost, Index: idx}.String())
	return nil
}

// RemoveNICErr removes a pooled NIC. The NIC must be idle: no instance may
// hold it as primary, backup, or pending migration target, and the
// allocator must not have placements on it (ErrNodeInUse otherwise). After
// Start the device's switch port is disabled and its dedicated backend
// core (if any) is stalled; links to it go permanently quiet.
func (t *Topology) RemoveNICErr(id uint16) error {
	n, ok := t.NICs[id]
	if !ok {
		return fmt.Errorf("oasis: %w: %s", ErrNoSuchNode, t.nicName(id))
	}
	if n.BE == nil {
		return fmt.Errorf("oasis: %w: %s serves a baseline local driver", ErrNodeInUse, t.nicName(id))
	}
	for _, inst := range t.instances {
		if inst.Port != nil && inst.Port.UsesNIC(id) {
			return fmt.Errorf("oasis: %w: instance %v is attached to %s", ErrNodeInUse, inst.IPAddr(), t.nicName(id))
		}
	}
	if t.Alloc != nil && t.Alloc.InstancesOn(id) > 0 {
		return fmt.Errorf("oasis: %w: allocator has %d placement(s) on %s", ErrNodeInUse, t.Alloc.InstancesOn(id), t.nicName(id))
	}
	if t.started {
		n.SwPort.SetEnabled(false)
		if !t.cfg.SharedHostCore {
			if d := n.BE.Driver(); d != nil {
				d.Stall()
			}
		}
	}
	if t.Alloc != nil {
		t.Alloc.RemoveNIC(id)
	}
	beHost := n.BE.Host()
	for _, ph := range t.Hosts {
		if ph.H != beHost {
			continue
		}
		for i, be := range ph.BEs {
			if be == n.BE {
				ph.BEs = append(ph.BEs[:i], ph.BEs[i+1:]...)
				break
			}
		}
	}
	delete(t.NICs, id)
	delete(t.nicDir, id)
	t.dropNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindNIC, Index: int(id)}.String())
	return nil
}

// RemoveSSDErr removes a pooled SSD. The drive must be idle: no volume may
// be bound to it as primary or mirror on any host, and it must not be the
// designated backup drive while volumes exist (ErrNodeInUse otherwise).
func (t *Topology) RemoveSSDErr(id uint16) error {
	d, ok := t.SSDs[id]
	if !ok {
		return fmt.Errorf("oasis: %w: %s", ErrNoSuchNode, t.ssdName(id))
	}
	for _, ph := range t.Hosts {
		if ph.removed || ph.SFE == nil {
			continue
		}
		if ph.SFE.UsesSSD(id) {
			return fmt.Errorf("oasis: %w: %s has volumes bound to %s", ErrNodeInUse, ph.H.Name, t.ssdName(id))
		}
	}
	if t.started && !t.cfg.SharedHostCore {
		if drv := d.BE.Driver(); drv != nil {
			drv.Stall()
		}
	}
	if t.Alloc != nil {
		t.Alloc.RemoveSSD(id)
	}
	delete(t.SSDs, id)
	t.dropNode(topo.Ref{Pod: topo.Unscoped, Kind: topo.KindSSD, Index: int(id)}.String())
	return nil
}
