package oasis

import (
	"fmt"

	"oasis/internal/core"
	"oasis/internal/faults"
	"oasis/internal/topo"
)

// BindFaults creates (once) the topology's fault injector and registers the
// handler for every fault kind. Call it after Start — targets are resolved
// at injection time against the live topology. The injector's instruments
// register under faults/* in the pod registry (pod<P>/faults/* for cluster
// pods), so chaos campaigns show up in Stats alongside everything else.
//
// Targets use the internal/topo grammar (the same strings the cluster
// placement layer uses), per kind:
//
//	host-crash, cxl-degrade, cxl-jitter:   "host<N>"  (pod host index)
//	engine-stall:                          a driver core name ("host2/storage-be1", "host0/fe", …)
//	nic-link-down, port-flap, nic-lossy,
//	link-flaky:                            "nic<N>"   (pooled NIC id)
//	ssd-fail, ssd-slow:                    "ssd<N>"   (pooled SSD id)
//
// Any form may carry a "pod<P>/" scope; a pod injector accepts it only if P
// is its own pod index (Cluster.RunFaultPlan routes scoped events to the
// right pod's injector).
//
// HostCrash stalls every driver core on the host (engines freeze, telemetry
// stops — the allocator sees lease expiries) and stops the host's raft
// replica if it carries one; healing resumes the cores and restarts the
// replica, which rejoins as a follower. A crashed allocator host is the
// "allocator leader loss" scenario: proposals fail over to the re-elected
// leader and the allocator rebuilds leases when its core resumes.
func (t *Topology) BindFaults() *faults.Injector {
	if t.injector != nil {
		return t.injector
	}
	in := faults.NewInjector(t.Eng)
	t.injector = in

	in.Handle(faults.HostCrash, faults.Handler{
		Inject: func(ev faults.Event) error {
			ph, idx, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			for _, d := range t.hostDrivers(ph) {
				d.Stall()
			}
			if idx < len(t.Raft) {
				t.Raft[idx].Stop()
			}
			return nil
		},
		Heal: func(ev faults.Event) error {
			ph, idx, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			for _, d := range t.hostDrivers(ph) {
				d.Resume()
			}
			if idx < len(t.Raft) {
				t.Raft[idx].Restart()
			}
			return nil
		},
	})
	in.Handle(faults.EngineStall, faults.Handler{
		Inject: func(ev faults.Event) error {
			d, err := t.faultDriver(ev.Target)
			if err != nil {
				return err
			}
			d.Stall()
			return nil
		},
		Heal: func(ev faults.Event) error {
			d, err := t.faultDriver(ev.Target)
			if err != nil {
				return err
			}
			d.Resume()
			return nil
		},
	})
	in.Handle(faults.NICLinkDown, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.Dev.ForceLink(false)
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.Dev.ForceLink(true)
			return nil
		},
	})
	in.Handle(faults.SSDFail, faults.Handler{
		Inject: func(ev faults.Event) error {
			d, err := t.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.Fail()
			return nil
		},
		Heal: func(ev faults.Event) error {
			d, err := t.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.Repair()
			return nil
		},
	})
	in.Handle(faults.PortFlap, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.SwPort.SetEnabled(false)
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.SwPort.SetEnabled(true)
			return nil
		},
	})
	in.Handle(faults.CXLDegrade, faults.Handler{
		Inject: func(ev faults.Event) error {
			ph, _, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetDegraded(ev.LatMult, ev.BWFrac)
			return nil
		},
		Heal: func(ev faults.Event) error {
			ph, _, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetDegraded(1, 1)
			return nil
		},
	})

	in.Handle(faults.SSDSlow, faults.Handler{
		Inject: func(ev faults.Event) error {
			d, err := t.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.SetSlow(ev.LatMult)
			return nil
		},
		Heal: func(ev faults.Event) error {
			d, err := t.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.SetSlow(1)
			return nil
		},
	})
	in.Handle(faults.NICLossy, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			// The drop sequence's seed is derived from the event itself so a
			// replayed plan drops the exact same frames.
			seed := int64(ev.At)
			for _, c := range ev.Target {
				seed = seed*131 + int64(c)
			}
			n.Dev.SetLossy(ev.Drop, seed)
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.Dev.ClearLossy()
			return nil
		},
	})
	in.Handle(faults.CXLJitter, faults.Handler{
		Inject: func(ev faults.Event) error {
			ph, _, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetJitter(ev.Jitter)
			return nil
		},
		Heal: func(ev faults.Event) error {
			ph, _, err := t.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetJitter(0)
			return nil
		},
	})
	// link-flaky pulses a switch port down for Stall every Period. A pulse
	// shorter than the NIC's PHY debounce never reaches the link-status
	// register, so the backend sees a link that is "up" while frames stall
	// intermittently — detectable only by its effects. The generation map
	// stops the pulse train at heal time without leaving the port down.
	flakyGen := make(map[string]int)
	in.Handle(faults.LinkFlaky, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			flakyGen[ev.Target]++
			gen := flakyGen[ev.Target]
			var pulse func()
			pulse = func() {
				if flakyGen[ev.Target] != gen {
					return
				}
				n.SwPort.SetEnabled(false)
				t.Eng.After(ev.Stall, func() {
					n.SwPort.SetEnabled(true)
					if flakyGen[ev.Target] == gen {
						t.Eng.After(ev.Period-ev.Stall, pulse)
					}
				})
			}
			pulse()
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := t.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			flakyGen[ev.Target]++
			n.SwPort.SetEnabled(true)
			return nil
		},
	})

	in.RegisterObs(t.obs, t.scope+"faults")
	return in
}

// RunFaultPlan binds the injector (if needed) and schedules the plan.
func (t *Topology) RunFaultPlan(pl faults.Plan) error {
	return t.BindFaults().Schedule(pl)
}

// Injector returns the topology's fault injector (nil before BindFaults).
func (t *Topology) Injector() *faults.Injector { return t.injector }

// faultRef parses a target through the shared topo grammar and checks its
// pod scope against this topology: unscoped targets address the local pod,
// scoped ones must name it exactly.
func (t *Topology) faultRef(target string, want topo.Kind) (topo.Ref, error) {
	r, err := topo.Parse(target)
	if err != nil {
		return topo.Ref{}, fmt.Errorf("oasis: %w", err)
	}
	if r.Pod != topo.Unscoped && r.Pod != t.podIndex {
		return topo.Ref{}, fmt.Errorf("oasis: target %q is scoped to pod%d, not this pod", target, r.Pod)
	}
	if r.Kind != want {
		return topo.Ref{}, fmt.Errorf("oasis: target %q is a %s, want a %s", target, r.Kind, want)
	}
	return r, nil
}

// faultHost resolves a "host<N>" target.
func (t *Topology) faultHost(target string) (*Host, int, error) {
	r, err := t.faultRef(target, topo.KindHost)
	if err != nil {
		return nil, 0, err
	}
	if r.Index < 0 || r.Index >= len(t.Hosts) || t.Hosts[r.Index].removed {
		return nil, 0, fmt.Errorf("oasis: no such host %q", target)
	}
	return t.Hosts[r.Index], r.Index, nil
}

// faultNIC resolves a "nic<N>" target.
func (t *Topology) faultNIC(target string) (*NIC, error) {
	r, err := t.faultRef(target, topo.KindNIC)
	if err != nil {
		return nil, err
	}
	n, ok := t.NICs[uint16(r.Index)]
	if !ok {
		return nil, fmt.Errorf("oasis: no such NIC %q", target)
	}
	return n, nil
}

// faultSSD resolves an "ssd<N>" target.
func (t *Topology) faultSSD(target string) (*SSDDev, error) {
	r, err := t.faultRef(target, topo.KindSSD)
	if err != nil {
		return nil, err
	}
	d, ok := t.SSDs[uint16(r.Index)]
	if !ok {
		return nil, fmt.Errorf("oasis: no such SSD %q", target)
	}
	return d, nil
}

// faultDriver resolves an engine-stall target by driver core name. Driver
// names carry the pod scope already ("pod1/host2/fe" in a cluster), so the
// parsed local name is re-prefixed before the exact match.
func (t *Topology) faultDriver(target string) (*core.Driver, error) {
	r, err := t.faultRef(target, topo.KindDriver)
	if err != nil {
		return nil, err
	}
	name := t.scope + r.Name
	for _, d := range t.allDrivers() {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("oasis: no driver core named %q", target)
}

// hostDrivers collects every driver core that runs on a host — the blast
// radius of a host crash. Deterministic order, deduped by pointer (shared
// host cores appear once).
func (t *Topology) hostDrivers(ph *Host) []*core.Driver {
	var out []*core.Driver
	seen := make(map[*core.Driver]bool)
	add := func(d *core.Driver) {
		if d != nil && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	add(ph.Driver)
	add(ph.FE.Driver())
	if ph.SFE != nil {
		add(ph.SFE.Driver())
	}
	if ph.LD != nil {
		add(ph.LD.Driver())
	}
	for _, be := range ph.BEs {
		add(be.Driver())
	}
	for _, id := range t.ssdIDs() {
		if d := t.SSDs[id]; d.BE.Host() == ph.H {
			add(d.BE.Driver())
		}
	}
	if t.Alloc != nil && len(t.Hosts) > 0 && t.Hosts[0] == ph {
		add(t.Alloc.Driver())
	}
	return out
}

// allDrivers collects every driver core in the topology in deterministic
// order.
func (t *Topology) allDrivers() []*core.Driver {
	var out []*core.Driver
	seen := make(map[*core.Driver]bool)
	for _, ph := range t.Hosts {
		for _, d := range t.hostDrivers(ph) {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}
