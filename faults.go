package oasis

import (
	"fmt"
	"strconv"
	"strings"

	"oasis/internal/core"
	"oasis/internal/faults"
)

// BindFaults creates (once) the pod's fault injector and registers the
// handler for every fault kind against this pod's topology. Call it after
// Start — targets are resolved at injection time against the frozen
// topology. The injector's instruments register under faults/* in the pod
// registry, so chaos campaigns show up in Pod.Stats alongside everything
// else.
//
// Target grammar, per kind:
//
//	host-crash, cxl-degrade:  "host<N>"            (pod host index)
//	engine-stall:             a driver core name    ("host2/storage-be1", "host0/fe", …)
//	nic-link-down, port-flap: "nic<N>"             (pooled NIC id)
//	ssd-fail:                 "ssd<N>"             (pooled SSD id)
//
// HostCrash stalls every driver core on the host (engines freeze, telemetry
// stops — the allocator sees lease expiries) and stops the host's raft
// replica if it carries one; healing resumes the cores and restarts the
// replica, which rejoins as a follower. A crashed allocator host is the
// "allocator leader loss" scenario: proposals fail over to the re-elected
// leader and the allocator rebuilds leases when its core resumes.
func (pod *Pod) BindFaults() *faults.Injector {
	if pod.injector != nil {
		return pod.injector
	}
	in := faults.NewInjector(pod.Eng)
	pod.injector = in

	in.Handle(faults.HostCrash, faults.Handler{
		Inject: func(ev faults.Event) error {
			ph, idx, err := pod.faultHost(ev.Target)
			if err != nil {
				return err
			}
			for _, d := range pod.hostDrivers(ph) {
				d.Stall()
			}
			if idx < len(pod.Raft) {
				pod.Raft[idx].Stop()
			}
			return nil
		},
		Heal: func(ev faults.Event) error {
			ph, idx, err := pod.faultHost(ev.Target)
			if err != nil {
				return err
			}
			for _, d := range pod.hostDrivers(ph) {
				d.Resume()
			}
			if idx < len(pod.Raft) {
				pod.Raft[idx].Restart()
			}
			return nil
		},
	})
	in.Handle(faults.EngineStall, faults.Handler{
		Inject: func(ev faults.Event) error {
			d, err := pod.faultDriver(ev.Target)
			if err != nil {
				return err
			}
			d.Stall()
			return nil
		},
		Heal: func(ev faults.Event) error {
			d, err := pod.faultDriver(ev.Target)
			if err != nil {
				return err
			}
			d.Resume()
			return nil
		},
	})
	in.Handle(faults.NICLinkDown, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := pod.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.Dev.ForceLink(false)
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := pod.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.Dev.ForceLink(true)
			return nil
		},
	})
	in.Handle(faults.SSDFail, faults.Handler{
		Inject: func(ev faults.Event) error {
			d, err := pod.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.Fail()
			return nil
		},
		Heal: func(ev faults.Event) error {
			d, err := pod.faultSSD(ev.Target)
			if err != nil {
				return err
			}
			d.Dev.Repair()
			return nil
		},
	})
	in.Handle(faults.PortFlap, faults.Handler{
		Inject: func(ev faults.Event) error {
			n, err := pod.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.SwPort.SetEnabled(false)
			return nil
		},
		Heal: func(ev faults.Event) error {
			n, err := pod.faultNIC(ev.Target)
			if err != nil {
				return err
			}
			n.SwPort.SetEnabled(true)
			return nil
		},
	})
	in.Handle(faults.CXLDegrade, faults.Handler{
		Inject: func(ev faults.Event) error {
			ph, _, err := pod.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetDegraded(ev.LatMult, ev.BWFrac)
			return nil
		},
		Heal: func(ev faults.Event) error {
			ph, _, err := pod.faultHost(ev.Target)
			if err != nil {
				return err
			}
			if ph.H.CXLPort == nil {
				return fmt.Errorf("oasis: %s has no CXL port", ev.Target)
			}
			ph.H.CXLPort.SetDegraded(1, 1)
			return nil
		},
	})

	in.RegisterObs(pod.obs, "faults")
	return in
}

// RunFaultPlan binds the injector (if needed) and schedules the plan.
func (pod *Pod) RunFaultPlan(pl faults.Plan) error {
	return pod.BindFaults().Schedule(pl)
}

// Injector returns the pod's fault injector (nil before BindFaults).
func (pod *Pod) Injector() *faults.Injector { return pod.injector }

// faultHost resolves a "host<N>" target.
func (pod *Pod) faultHost(target string) (*Host, int, error) {
	idx, err := faultIndex(target, "host")
	if err != nil {
		return nil, 0, err
	}
	if idx < 0 || idx >= len(pod.Hosts) {
		return nil, 0, fmt.Errorf("oasis: no such host %q", target)
	}
	return pod.Hosts[idx], idx, nil
}

// faultNIC resolves a "nic<N>" target.
func (pod *Pod) faultNIC(target string) (*NIC, error) {
	id, err := faultIndex(target, "nic")
	if err != nil {
		return nil, err
	}
	n, ok := pod.NICs[uint16(id)]
	if !ok {
		return nil, fmt.Errorf("oasis: no such NIC %q", target)
	}
	return n, nil
}

// faultSSD resolves an "ssd<N>" target.
func (pod *Pod) faultSSD(target string) (*SSDDev, error) {
	id, err := faultIndex(target, "ssd")
	if err != nil {
		return nil, err
	}
	d, ok := pod.SSDs[uint16(id)]
	if !ok {
		return nil, fmt.Errorf("oasis: no such SSD %q", target)
	}
	return d, nil
}

// faultDriver resolves an engine-stall target by driver core name.
func (pod *Pod) faultDriver(target string) (*core.Driver, error) {
	for _, d := range pod.allDrivers() {
		if d.Name() == target {
			return d, nil
		}
	}
	return nil, fmt.Errorf("oasis: no driver core named %q", target)
}

func faultIndex(target, prefix string) (int, error) {
	num, ok := strings.CutPrefix(target, prefix)
	if !ok {
		return 0, fmt.Errorf("oasis: target %q must look like %q", target, prefix+"<N>")
	}
	idx, err := strconv.Atoi(num)
	if err != nil {
		return 0, fmt.Errorf("oasis: bad target %q: %w", target, err)
	}
	return idx, nil
}

// hostDrivers collects every driver core that runs on a host — the blast
// radius of a host crash. Deterministic order, deduped by pointer (shared
// host cores appear once).
func (pod *Pod) hostDrivers(ph *Host) []*core.Driver {
	var out []*core.Driver
	seen := make(map[*core.Driver]bool)
	add := func(d *core.Driver) {
		if d != nil && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	add(ph.Driver)
	add(ph.FE.Driver())
	if ph.SFE != nil {
		add(ph.SFE.Driver())
	}
	if ph.LD != nil {
		add(ph.LD.Driver())
	}
	for _, be := range ph.BEs {
		add(be.Driver())
	}
	for _, id := range pod.ssdIDs() {
		if d := pod.SSDs[id]; d.BE.Host() == ph.H {
			add(d.BE.Driver())
		}
	}
	if pod.Alloc != nil && len(pod.Hosts) > 0 && pod.Hosts[0] == ph {
		add(pod.Alloc.Driver())
	}
	return out
}

// allDrivers collects every driver core in the pod in deterministic order.
func (pod *Pod) allDrivers() []*core.Driver {
	var out []*core.Driver
	seen := make(map[*core.Driver]bool)
	for _, ph := range pod.Hosts {
		for _, d := range pod.hostDrivers(ph) {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}
