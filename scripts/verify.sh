#!/bin/sh
# Tier-1 verification gate: everything a change must pass before merging.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

# One engine is single-threaded (cooperative scheduling), so the race
# detector is meaningful on two fronts: packages usable from concurrent
# tooling (pure data-structure/statistics code; the obs registry is
# explicitly safe to snapshot from outside the sim loop, and core carries
# the channel-latency trackers it samples), and the experiments harness,
# whose parallel runner fans whole private engines out across par.Do
# workers and merges results in order. Only the parallel-runner tests run
# under race there — the rest of the suite re-runs every figure at ~10x
# race overhead without touching any additional concurrency.
echo "== go test -race (concurrent-facing packages) =="
go test -race ./internal/memalloc ./internal/metrics ./internal/obs/... ./internal/core/... ./internal/par ./internal/faults ./internal/topo
# internal/sim now carries real intra-run concurrency: partitioned groups
# run one goroutine per partition inside conservative windows. Its whole
# test suite (partition windows, pairwise lookahead, persistent workers,
# barrier alloc regression, inbox-overflow/window-collapse panics, mobile
# hops, group shutdown) runs under the detector, as do the cluster-level
# partitioned tests and the per-host pod tests (client/guest partitions
# behind RemotePorts and pool channels).
go test -race ./internal/sim
go test -race -run 'TestPartitionedCluster|TestClusterFaultPlanMidMigration|TestPerHost' .
# -short: one chaos run (invariants only) — the byte-identical rerun is
# asserted by the non-race tier above; doubling it under the detector's
# ~10x overhead buys no extra race coverage.
go test -race -short -run 'Parallel|Chaos' ./internal/experiments

# Intra-run determinism: the same experiment serial vs partitioned (one
# partition per pod) must produce byte-identical report bodies, and the OS
# thread count must be invisible — the conservative-window barriers plus
# the (timestamp, source partition, source seq) merge order are the only
# schedule. Swept at GOMAXPROCS=1 (everything time-slices one thread), 2
# (real preemption between partitions), and 8 (full fan-out). Per-host
# mode (clients and guests on partitions of their own) is swept in the
# same loop: its timeline is not comparable to serial — the RemotePort
# attachment adds real cable latency — but must itself be byte-identical
# across reruns at every thread count (chaos campaign + racksweep app
# runs in internal/experiments, echo flow in the root package).
echo "== intra-run partitioned determinism (GOMAXPROCS=1,2,8) =="
for n in 1 2 8; do
    echo "-- GOMAXPROCS=$n"
    GOMAXPROCS=$n go test -count=1 -run 'TestIntraRunPartitionedMatchesSerial|TestPerHostPartitionedDeterministic' ./internal/experiments
    GOMAXPROCS=$n go test -count=1 -run 'TestPerHostPodDeterministic' .
done

# Smoke the full parallel fan-out end to end: every experiment at tiny
# scale with GOMAXPROCS workers. Output determinism vs the serial path is
# asserted by TestParallelMatchesSerial; this catches wiring regressions
# (flag plumbing, ordered flush, worker startup) in the binary itself.
echo "== oasis-bench parallel smoke =="
go run ./cmd/oasis-bench -run all -scale 0.05 -parallel > /dev/null

# Chaos smoke: the seeded fault campaign must end with every recovery
# invariant intact (no acked-write loss, bounded loss windows, bounded
# control-plane recovery) — in serial mode and in per-host mode, where the
# probe client advances on a partition of its own. The report says so in
# one grep-able line.
echo "== chaos campaign smoke (serial + per-host) =="
go run ./cmd/oasis-bench -run chaos | grep -q "invariants: OK"
go run ./cmd/oasis-bench -run chaos-perhost | grep -q "invariants: OK"

# Gray-failure smoke: all four degraded-mode kinds in one seeded campaign,
# with the health scorer evacuating both gray devices and the hard-failover
# machinery silent — and the report byte-identical between the serial run
# and the -parallel runner (the timeline is absolute, so the bytes must
# match exactly, modulo the real-clock "wall time" footer line). Serial-vs-
# partitioned and per-host byte-identity run in the GOMAXPROCS sweep above
# (grayfail subtests of the same gates).
echo "== grayfail campaign smoke + determinism (serial vs -parallel + per-host) =="
gray_a=$(go run ./cmd/oasis-bench -run grayfail | grep -v "wall time")
echo "$gray_a" | grep -q "invariants: OK"
gray_b=$(go run ./cmd/oasis-bench -run grayfail -parallel | grep -v "wall time")
if [ "$gray_a" != "$gray_b" ]; then
    echo "grayfail report differs between serial and -parallel runs" >&2
    exit 1
fi
go run ./cmd/oasis-bench -run grayfail-perhost | grep -q "invariants: OK"

# Blackout smoke: the pre-copy migration blackout must be strictly smaller
# than stop-the-world at every write rate, with no acked write lost under
# either protocol. The report says so in one grep-able line.
echo "== migration blackout smoke (pre-copy vs stop-the-world) =="
go run ./cmd/oasis-bench -run blackout | grep -q "invariants: OK"

# Fuzz seed-corpus regression: the stored FuzzParsePlan seeds (every fault
# kind incl. the gray quartet, plus near-miss invalids) run as ordinary
# tests — no long fuzzing here; use `go test -fuzz=FuzzParsePlan
# ./internal/faults` to explore.
echo "== fault-plan grammar fuzz corpus =="
go test -run FuzzParsePlan ./internal/faults

# Rack smoke: the 512-host multi-pod cluster must place, hot-spot, and
# rebalance with cross-pod migrations — serially, in partitioned execution
# (one sim partition per pod), and per-host (plus one per client).
# (Byte-identity across reruns, -parallel, and execution modes is asserted
# by the determinism tests.)
echo "== racksweep cluster smoke (serial + partitioned + per-host) =="
go run ./cmd/oasis-bench -run racksweep -scale 0.05 | grep -q "cross-pod migrations"
go run ./cmd/oasis-bench -run racksweep-par -scale 0.05 | grep -q "cross-pod migrations"
go run ./cmd/oasis-bench -run racksweep-perhost -scale 0.05 | grep -q "cross-pod migrations"

echo "verify: OK"
