#!/bin/sh
# Tier-1 verification gate: everything a change must pass before merging.
# Run from the repository root (or via `make verify`).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test ./... =="
go test ./...

# The simulator itself is single-threaded (one cooperative engine), so the
# race detector is only meaningful on packages that never enter the sim:
# pure data-structure/statistics code usable from concurrent tooling. The
# obs registry is explicitly safe to snapshot from outside the sim loop,
# and core carries the channel-latency trackers it samples.
echo "== go test -race (non-simulation packages) =="
go test -race ./internal/memalloc ./internal/metrics ./internal/obs/... ./internal/core/...

echo "verify: OK"
