//go:build ignore

// benchjson converts `go test -bench` output on stdin into BENCH_results.json
// so the perf trajectory is tracked across PRs. The JSON keeps two views of
// the same data: `benchmarks` is parsed per-benchmark (wall-clock ns/op,
// allocation counters, and the headline paper metrics each benchmark reports
// via b.ReportMetric), and `raw` preserves the original benchmark lines
// verbatim — extract them (`jq -r '.raw[]'`) and feed two snapshots straight
// to benchstat for a significance-tested comparison.
//
// Usage: go test -run XXX -bench . -benchtime=1x -benchmem . | go run scripts/benchjson.go > BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type results struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Execution-environment shape: partitioned-execution rows (the
	// RacksweepSim family) scale with available parallelism, so a snapshot
	// is only comparable to another taken at the same width.
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []benchmark `json:"benchmarks"`
	Raw        []string    `json:"raw"`
}

func main() {
	out := results{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parse(line)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: skipping unparsable line: %s\n", line)
				continue
			}
			out.Benchmarks = append(out.Benchmarks, b)
			out.Raw = append(out.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse decodes one benchmark line: a name, an iteration count, then
// value/unit pairs (ns/op, B/op, allocs/op, and b.ReportMetric extras).
func parse(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       trimProcs(strings.TrimPrefix(fields[0], "Benchmark")),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}

// trimProcs drops the -N GOMAXPROCS suffix go test appends when procs != 1.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
