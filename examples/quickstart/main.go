// Quickstart: the smallest useful Oasis pod.
//
// Two hosts share one CXL memory pool. Host 1 owns the pod's only NIC;
// host 0 runs a container instance with NO local NIC — its packets flow
// through shared CXL memory to host 1's NIC (§3.3). A client outside the
// pod talks to the instance over the rack switch and measures echo RTTs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/metrics"
)

func main() {
	pod := oasis.NewPod(oasis.DefaultConfig())

	host0 := pod.AddHost() // runs the instance; has no NIC
	host1 := pod.AddHost() // owns the pod's NIC
	nic := pod.AddNIC(host1, false)

	inst := pod.AddInstance(host0, oasis.IP(10, 0, 0, 10))
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))

	pod.Start()

	// Ask the pod-wide allocator (§3.5) to pick a NIC for the instance —
	// it will choose nic1, the only one.
	inst.RequestAllocation()

	// The instance runs a UDP echo server on its user-level stack.
	pod.Go("echo-server", func(p *oasis.Proc) {
		conn, err := inst.Stack.ListenUDP(7)
		if err != nil {
			panic(err)
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})

	// The client measures 100 echo round trips.
	var hist metrics.Histogram
	pod.Go("client", func(p *oasis.Proc) {
		conn, err := client.Stack.ListenUDP(0)
		if err != nil {
			panic(err)
		}
		if !inst.WaitReady(p, 100*time.Millisecond) {
			panic("instance was never assigned a NIC")
		}
		payload := []byte("hello through the CXL pool")
		for i := 0; i < 100; i++ {
			start := p.Now()
			if err := conn.SendTo(p, inst.IPAddr(), 7, payload); err != nil {
				panic(err)
			}
			if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); ok {
				hist.Record(p.Now() - start)
			}
			p.Sleep(100 * time.Microsecond)
		}
		pod.Shutdown()
	})

	pod.Run(time.Second)

	fmt.Printf("echoes completed : %d\n", hist.Count())
	fmt.Printf("RTT p50 / p99    : %v / %v\n", hist.Percentile(50), hist.Percentile(99))
	fmt.Printf("instance TX pkts : %d (every one via the remote NIC on %s)\n",
		inst.Port.TxPackets, nic.Dev.Name())
	fmt.Printf("CXL payload bytes written by host0: %d\n",
		host0.H.CXLPort.WriteMeter().Category("payload"))
}
