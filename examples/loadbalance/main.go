// Load balancing: the pod-wide allocator exploits its 100 ms telemetry to
// migrate an instance off an overloaded NIC (§3.5 monitoring + the §6
// "load balancing policies" extension).
//
// Three instances are initially served by nic1 while nic2 idles. A client
// drives bulk traffic at all three; when nic1's telemetry-reported load
// crosses the high-water mark, the allocator gracefully migrates the
// heaviest instance to nic2 (registration, GARP, 5 s dual-RX grace window —
// §3.3.4), with zero packet loss.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"time"

	"oasis"
)

func main() {
	cfg := oasis.DefaultConfig()
	// Rebalance thresholds are fractions of NIC capacity; the simulated
	// single-core datapath moves ~0.5 GB/s, so the demo triggers at 0.1% of 12.5 GB/s.
	cfg.Allocator.Rebalance = true
	cfg.Allocator.RebalanceHigh = 0.001
	cfg.Allocator.RebalanceLow = 0.0005
	cfg.Allocator.RebalanceEvery = 300 * time.Millisecond
	pod := oasis.NewPod(cfg)

	host0 := pod.AddHost()
	host1 := pod.AddHost()
	host2 := pod.AddHost()
	nic1 := pod.AddNIC(host1, false)
	nic2 := pod.AddNIC(host2, false)

	var insts []*oasis.Instance
	for i := 0; i < 3; i++ {
		insts = append(insts, pod.AddInstance(host0, oasis.IP(10, 0, 0, byte(10+i))))
	}
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	// Declared demand is tiny, so the allocator spreads placements — but
	// ACTUAL traffic won't match declarations, which is the §6 point.
	for _, in := range insts {
		pod.Alloc.SetInstanceDemand(in.IPAddr(), 1e6)
	}
	for _, in := range insts {
		in.RequestAllocation()
		in := in
		pod.Go("echo", func(p *oasis.Proc) {
			conn, _ := in.Stack.ListenUDP(7)
			for {
				dg := conn.Recv(p)
				conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
			}
		})
	}

	lost, sent := 0, 0
	pod.Go("client", func(p *oasis.Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(5 * time.Millisecond)
		// Find the two instances sharing a NIC and flood only those: the
		// declared-demand placement balanced 2/1, but the real load is
		// lopsided.
		var hot []*oasis.Instance
		count := map[uint16]int{}
		for _, in := range insts {
			if id, ok := pod.Alloc.PrimaryOf(in.IPAddr()); ok {
				count[id]++
			}
		}
		var hotNIC uint16
		for id, n := range count {
			if n >= 2 {
				hotNIC = id
			}
		}
		for _, in := range insts {
			if id, _ := pod.Alloc.PrimaryOf(in.IPAddr()); id == hotNIC {
				hot = append(hot, in)
			}
		}
		fmt.Printf("flooding the %d instances sharing nic%d; load telemetry will diverge\n",
			len(hot), hotNIC)
		payload := make([]byte, 1400)
		for p.Now() < 1500*time.Millisecond {
			for _, in := range hot {
				sent++
				conn.SendTo(p, in.IPAddr(), 7, payload)
				if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); !ok {
					lost++
				}
				p.Sleep(40 * time.Microsecond) // stay below datapath saturation
			}
		}
		pod.Shutdown()
	})
	pod.Run(10 * time.Second)

	fmt.Printf("echo round trips : %d (%d lost)\n", sent-lost, lost)
	fmt.Printf("rebalances       : %d\n", pod.Alloc.Rebalances)
	fmt.Printf("nic1 served      : %.1f MB\n", float64(nic1.Dev.TxBytes+nic1.Dev.RxBytes)/1e6)
	fmt.Printf("nic2 served      : %.1f MB (traffic after the graceful migration)\n",
		float64(nic2.Dev.TxBytes+nic2.Dev.RxBytes)/1e6)
	for _, in := range insts {
		if nicID, ok := pod.Alloc.PrimaryOf(in.IPAddr()); ok {
			fmt.Printf("instance %v now on nic%d\n", in.IPAddr(), nicID)
		}
	}
}
