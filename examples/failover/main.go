// Failover: a NIC dies mid-stream and the pod's reserved backup NIC takes
// over in tens of milliseconds (§3.3.3, §5.3).
//
// The instance's packets are served by nic1 on host 1. At t = 200 ms the
// switch port feeding nic1 is disabled. The backend driver notices the
// link-status change, tells the pod-wide allocator, and the allocator (a)
// repoints every affected frontend at the backup NIC — TX buffers are
// already in shared CXL memory, so no copying — and (b) has the backup NIC
// "borrow" the dead NIC's MAC so the ToR switch reroutes inbound traffic
// instantly. The application never notices beyond a brief gap.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"oasis"
)

func main() {
	cfg := oasis.DefaultConfig()
	cfg.Engine.IdleBackoff = 20 * time.Microsecond // speeds the long run
	pod := oasis.NewPod(cfg)

	host0 := pod.AddHost() // instance host
	host1 := pod.AddHost() // primary NIC host
	host2 := pod.AddHost() // backup NIC host
	primary := pod.AddNIC(host1, false)
	backup := pod.AddNIC(host2, true) // the pod's reserved backup (§3.3.3)

	inst := pod.AddInstance(host0, oasis.IP(10, 0, 0, 10))
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation()

	pod.Go("echo-server", func(p *oasis.Proc) {
		conn, _ := inst.Stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
		}
	})

	failAt := 200 * time.Millisecond
	pod.Eng.At(failAt, func() {
		fmt.Printf("t=%-8v injecting failure: disabling %s's switch port\n", failAt, primary.Dev.Name())
		pod.FailNICPort(primary.ID)
	})

	var sent, lost int
	var gapStart, gapEnd time.Duration
	pod.Go("client", func(p *oasis.Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(5 * time.Millisecond)
		for p.Now() < 500*time.Millisecond {
			at := p.Now()
			conn.SendTo(p, inst.IPAddr(), 7, []byte("probe"))
			sent++
			if _, ok := conn.RecvTimeout(p, time.Millisecond); !ok {
				lost++
				if gapStart == 0 {
					gapStart = at
				}
				gapEnd = at
			}
		}
		pod.Shutdown()
	})
	pod.Run(10 * time.Second)

	fmt.Printf("t=%-8v service restored on %s (borrowed MAC %v)\n",
		gapEnd+time.Millisecond, backup.Dev.Name(), primary.Dev.MAC())
	fmt.Printf("probes: %d sent, %d lost\n", sent, lost)
	fmt.Printf("interruption: ~%v (paper: 38 ms)\n", gapEnd-gapStart+time.Millisecond)
	fmt.Printf("allocator failovers: %d, backup NIC tx packets: %d\n",
		pod.Alloc.Failovers, backup.Dev.TxPackets)
}
