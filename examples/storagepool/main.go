// Storage pooling: an instance on a diskless host does block I/O to an SSD
// on another host through the Oasis storage engine (§3.4).
//
// The engine's 64-byte messages mirror NVMe commands; I/O buffers live in
// shared CXL memory and the SSD DMAs them directly, so the backend never
// touches data. A drive failure propagates an I/O error to the guest — the
// paper's failure semantics — rather than attempting transparent failover.
//
//	go run ./examples/storagepool
package main

import (
	"bytes"
	"fmt"
	"time"

	"oasis"
	"oasis/internal/metrics"
	"oasis/internal/ssd"
)

func main() {
	pod := oasis.NewPod(oasis.DefaultConfig())

	host0 := pod.AddHost() // diskless: runs the instance
	host1 := pod.AddHost() // owns the pod's NIC and SSD
	pod.AddNIC(host1, false)
	drive := pod.AddSSD(host1, 1<<20) // 4 GiB namespace

	inst := pod.AddInstance(host0, oasis.IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, drive.ID, 65536) // 256 MiB volume
	pod.Start()
	inst.RequestAllocation()

	var writeLat, readLat metrics.Histogram
	pod.Go("db-app", func(p *oasis.Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			panic("volume registration failed")
		}
		fmt.Printf("volume ready: %d blocks (%d MiB) on remote %s\n",
			vol.Blocks(), vol.Blocks()*ssd.BlockSize/(1<<20), drive.Dev.Name())

		// Write a little "database" of 64 records, one block each.
		for i := uint64(0); i < 64; i++ {
			rec := bytes.Repeat([]byte{byte(i)}, ssd.BlockSize)
			t0 := p.Now()
			if err := vol.Write(p, i, rec); err != nil {
				panic(err)
			}
			writeLat.Record(p.Now() - t0)
		}
		// Read them back and verify integrity end to end.
		for i := uint64(0); i < 64; i++ {
			t0 := p.Now()
			got, err := vol.Read(p, i, 1)
			if err != nil {
				panic(err)
			}
			readLat.Record(p.Now() - t0)
			if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, ssd.BlockSize)) {
				panic("data corruption through the pool")
			}
		}
		fmt.Printf("64 writes: p50=%v p99=%v\n", writeLat.Percentile(50), writeLat.Percentile(99))
		fmt.Printf("64 reads : p50=%v p99=%v (device alone is ~100 µs)\n",
			readLat.Percentile(50), readLat.Percentile(99))

		// Inject a drive failure: the guest sees I/O errors (§3.4).
		drive.Dev.Fail()
		if _, err := vol.Read(p, 0, 1); err != nil {
			fmt.Printf("after drive failure: %v\n", err)
		} else {
			panic("failed drive serviced a read")
		}
		pod.Shutdown()
	})
	pod.Run(10 * time.Second)
	fmt.Printf("SSD served %d reads / %d writes over the CXL pool\n",
		drive.Dev.Reads, drive.Dev.Writes)
}
