// podkv: a key-value store that uses BOTH Oasis engines at once.
//
// The KV instance runs on a host with neither a NIC nor an SSD. Its
// network traffic flows through the pooled NIC on host 1 (network engine,
// §3.3) and every SET writes through to a volume on the pooled SSD on
// host 2 (storage engine, §3.4). After a simulated soft reboot, a fresh
// store recovers its contents from the volume — the ephemeral-local-SSD
// durability model the paper describes.
//
//	go run ./examples/podkv
package main

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/instance"
)

func main() {
	pod := oasis.NewPod(oasis.DefaultConfig())

	host0 := pod.AddHost() // deviceless: runs the KV instance
	host1 := pod.AddHost() // pooled NIC
	host2 := pod.AddHost() // pooled SSD
	pod.AddNIC(host1, false)
	drive := pod.AddSSD(host2, 1<<18)

	inst := pod.AddInstance(host0, oasis.IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, drive.ID, 1<<14)
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation()

	store := instance.NewStore(vol, 3*time.Microsecond)
	pod.Go("kv-setup", func(p *oasis.Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			panic("volume not granted")
		}
		if err := instance.ServeKV(pod.Eng, inst.Stack, 11211, store); err != nil {
			panic(err)
		}
	})

	pod.Go("client", func(p *oasis.Proc) {
		inst.WaitReady(p, 100*time.Millisecond)
		p.Sleep(5 * time.Millisecond)
		kv, err := instance.DialKV(p, client.Stack, inst.IPAddr(), 11211)
		if err != nil {
			panic(err)
		}
		start := p.Now()
		for i := 0; i < 32; i++ {
			key := fmt.Sprintf("user:%04d", i)
			if err := kv.Set(p, key, []byte(fmt.Sprintf("profile-data-%d", i))); err != nil {
				panic(err)
			}
		}
		fmt.Printf("32 persisted SETs in %v (NIC on host1, SSD on host2, app on host0)\n",
			p.Now()-start)
		v, found, _ := kv.Get(p, "user:0007")
		fmt.Printf("GET user:0007 -> %q (found=%v)\n", v, found)

		// Soft reboot: rebuild the table purely from the pooled SSD.
		rebooted := instance.NewStore(vol, 3*time.Microsecond)
		if err := rebooted.Recover(p); err != nil {
			panic(err)
		}
		fmt.Printf("after soft reboot: recovered %d keys from the pooled volume\n", rebooted.Len())
		if got, ok := rebooted.Get(p, "user:0007"); ok {
			fmt.Printf("recovered user:0007 -> %q\n", got)
		}
		pod.Shutdown()
	})
	pod.Run(10 * time.Second)
	fmt.Printf("SSD totals: %d writes, %d reads — all via 64 B NVMe-mirror messages\n",
		drive.Dev.Writes, drive.Dev.Reads)
}
