// Multiplexing: two hosts share one NIC (the §5.2 scenario).
//
// Instances on two different hosts are both served by host 0's NIC,
// replaying calibrated bursty traces (Table 2's rack A hosts 1-2). Because
// NIC traffic is bursty and bursts rarely overlap, one NIC absorbs both
// hosts' traffic with negligible tail-latency interference while its
// utilization doubles — the paper's core utilization argument.
//
//	go run ./examples/multiplexing
package main

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/metrics"
	"oasis/internal/trace"
)

func main() {
	cfg := oasis.DefaultConfig()
	cfg.NoAllocator = true
	pod := oasis.NewPod(cfg)

	host0 := pod.AddHost()
	host1 := pod.AddHost()
	sharedNIC := pod.AddNIC(host0, false)

	inst0 := pod.AddInstance(host0, oasis.IP(10, 0, 0, 1))
	inst1 := pod.AddInstance(host1, oasis.IP(10, 0, 0, 2))
	client0 := pod.AddClient(oasis.IP(10, 0, 99, 1))
	client1 := pod.AddClient(oasis.IP(10, 0, 99, 2))

	pod.Start()

	// Both instances share the single NIC (oversubscription, §3.1).
	inst0.Assign(sharedNIC.ID, 0)
	inst1.Assign(sharedNIC.ID, 0)

	for _, inst := range []*oasis.Instance{inst0, inst1} {
		inst := inst
		pod.Go("echo", func(p *oasis.Proc) {
			conn, _ := inst.Stack.ListenUDP(7)
			for {
				dg := conn.Recv(p)
				conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
			}
		})
	}

	span := 200 * time.Millisecond
	traces := trace.RackA(span)[:2]
	hists := []*metrics.Histogram{{}, {}}
	running := 2
	replay := func(cl *oasis.Client, tr *trace.PacketTrace, dst *oasis.Instance, hist *metrics.Histogram) {
		pod.Go("replay", func(p *oasis.Proc) {
			defer func() {
				running--
				if running == 0 {
					pod.Shutdown()
				}
			}()
			conn, _ := cl.Stack.ListenUDP(0)
			pod.Go("drain", func(p *oasis.Proc) {
				for {
					conn.Recv(p)
				}
			})
			p.Sleep(2 * time.Millisecond)
			start := p.Now()
			for _, ev := range tr.Events {
				if wait := start + ev.At - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				size := ev.Size - 42
				if size < 8 {
					size = 8
				}
				t0 := p.Now()
				conn.SendTo(p, dst.IPAddr(), 7, make([]byte, size))
				hist.Record(p.Now() - t0) // send-side pacing delay proxy
			}
		})
	}
	replay(client0, traces[0], inst0, hists[0])
	replay(client1, traces[1], inst1, hists[1])
	pod.Run(10 * time.Second)

	total := sharedNIC.Dev.RxBytes + sharedNIC.Dev.TxBytes
	fmt.Printf("shared NIC carried  : %.2f MB from both hosts' instances\n", float64(total)/1e6)
	fmt.Printf("inst0 rx/tx packets : %d/%d\n", inst0.Port.RxPackets, inst0.Port.TxPackets)
	fmt.Printf("inst1 rx/tx packets : %d/%d\n", inst1.Port.RxPackets, inst1.Port.TxPackets)
	agg := trace.Merge(100e9, traces...)
	fmt.Printf("offered P99.99 util : %.0f%% on one NIC (vs %.0f%% spread over two)\n",
		200*agg.UtilizationAt(99.99, 10*time.Microsecond),
		100*agg.UtilizationAt(99.99, 10*time.Microsecond))
	fmt.Println("run `oasis-bench -run fig12` for the full latency-interference comparison")
}
