package oasis_test

import (
	"fmt"
	"time"

	"oasis"
)

// Example builds the smallest useful pod — an instance on a NIC-less host
// served by a pooled NIC on another host — and measures one UDP echo
// through the full Oasis datapath. Virtual time makes the output exact and
// reproducible.
func Example() {
	pod := oasis.NewPod(oasis.DefaultConfig())
	host0 := pod.AddHost() // runs the instance; has no NIC
	host1 := pod.AddHost() // owns the pod's NIC
	pod.AddNIC(host1, false)
	inst := pod.AddInstance(host0, oasis.IP(10, 0, 0, 10))
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation() // the pod-wide allocator picks the NIC

	pod.Go("server", func(p *oasis.Proc) {
		conn, _ := inst.Stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	pod.Go("client", func(p *oasis.Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		inst.WaitReady(p, 100*time.Millisecond)
		p.Sleep(time.Millisecond) // ARP warmup
		conn.SendTo(p, inst.IPAddr(), 7, []byte("hello"))
		if dg, ok := conn.RecvTimeout(p, 10*time.Millisecond); ok {
			fmt.Printf("echoed %q through the pooled NIC\n", dg.Data)
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	// Output: echoed "hello" through the pooled NIC
}

// Example_failover reserves a backup NIC, kills the primary's switch port,
// and shows the pod-wide allocator restoring service in tens of
// milliseconds (§3.3.3, §5.3).
func Example_failover() {
	cfg := oasis.DefaultConfig()
	cfg.Engine.IdleBackoff = 20 * time.Microsecond
	pod := oasis.NewPod(cfg)
	h0, h1, h2 := pod.AddHost(), pod.AddHost(), pod.AddHost()
	primary := pod.AddNIC(h1, false)
	pod.AddNIC(h2, true) // the reserved backup
	inst := pod.AddInstance(h0, oasis.IP(10, 0, 0, 10))
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation()

	pod.Go("server", func(p *oasis.Proc) {
		conn, _ := inst.Stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	pod.Eng.At(100*time.Millisecond, func() { pod.FailNICPort(primary.ID) })

	var lost int
	pod.Go("client", func(p *oasis.Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(5 * time.Millisecond)
		for p.Now() < 300*time.Millisecond {
			conn.SendTo(p, inst.IPAddr(), 7, []byte("probe"))
			if _, ok := conn.RecvTimeout(p, time.Millisecond); !ok {
				lost++
			}
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	fmt.Printf("failovers=%d, interruption of ~%dms\n", pod.Alloc.Failovers, lost)
	// Output: failovers=1, interruption of ~36ms
}
